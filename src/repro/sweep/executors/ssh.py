"""Cross-host shard dispatch over ``ssh``/``scp`` (or a fake transport).

Hosts come from ``--hosts host1,host2:8`` (``name:slots``) or a TOML
hostfile::

    # defaults applied to every host
    python = "/usr/bin/python3"
    cwd = "~/repro"                    # where `python -m repro` works

    [[hosts]]
    name = "fast-box"
    slots = 8                          # concurrent shards on this host

    [[hosts]]
    name = "spare-box"
    slots = 2
    python = "/opt/py311/bin/python3"
    env = { PYTHONPATH = "src" }

Each shard becomes one remote ``python -m repro sweep --shard i/n``
invocation; its artifact directory is produced under a per-dispatch
remote workdir and fetched back with ``scp -r`` once the shard exits 0.
All remote I/O goes through a :class:`CommandTransport`, so tests (and
``--transport local``) swap the real ``ssh``/``scp`` for
:class:`LocalCommandTransport`, which runs the same argv in a local
subprocess and "fetches" with a directory copy — the whole dispatch
path exercised end-to-end with no sshd.

A shard whose transport dies (connection refused, killed remote
process) is ``lost``; the driver re-dispatches it, and ``submit``
prefers hosts that have not already lost that shard.
"""

from __future__ import annotations

import os
import posixpath
import shlex
import shutil
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sweep.executors.base import (
    SHARD_FAILED,
    SHARD_LOST,
    SHARD_OK,
    Executor,
    ShardHandle,
    ShardSpec,
    _HandleRegistry,
)


@dataclass(frozen=True)
class Host:
    """One dispatch target: an ssh-reachable name plus its capacity."""

    name: str
    slots: int = 1
    python: str = "python3"
    cwd: Optional[str] = None
    env: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host name must be non-empty")
        if self.slots < 1:
            raise ValueError(f"host {self.name!r}: slots must be >= 1")


def parse_hosts(text: str, python: str = "python3") -> List[Host]:
    """Parse ``--hosts host1,host2:8`` into :class:`Host` entries."""
    hosts: List[Host] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, slots_text = chunk.partition(":")
        try:
            slots = int(slots_text) if sep else 1
        except ValueError:
            raise ValueError(
                f"bad host {chunk!r}; expected name or name:slots") from None
        hosts.append(Host(name, slots, python=python))
    if not hosts:
        raise ValueError(f"no hosts in {text!r}")
    return hosts


def load_hostfile(path: str) -> List[Host]:
    """Read a TOML hostfile (see module docstring for the format)."""
    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11
        raise ValueError(
            "TOML hostfiles need Python >= 3.11 (tomllib); "
            "use --hosts name:slots,... instead") from None
    with open(path, "rb") as handle:
        data = tomllib.load(handle)
    default_python = data.get("python", "python3")
    default_cwd = data.get("cwd")
    hosts = []
    for entry in data.get("hosts", []):
        if "name" not in entry:
            raise ValueError(f"{path}: [[hosts]] entry without a name")
        hosts.append(Host(
            entry["name"],
            entry.get("slots", 1),
            python=entry.get("python", default_python),
            cwd=entry.get("cwd", default_cwd),
            env=tuple(sorted(entry.get("env", {}).items())),
        ))
    if not hosts:
        raise ValueError(f"{path}: no [[hosts]] entries")
    return hosts


class TransportError(RuntimeError):
    """The transport could not reach the host or move artifacts."""


class CommandTransport:
    """How shard commands run on a host and artifacts come back."""

    name = "abstract"

    def run(self, host: Host, argv: Sequence[str],
            timeout: Optional[float] = None) -> Tuple[int, str]:
        """Run ``argv`` on ``host``; return (returncode, combined output)."""
        raise NotImplementedError

    def fetch(self, host: Host, remote_dir: str, local_dir: str) -> None:
        """Copy a remote directory's contents to a local directory."""
        raise NotImplementedError

    def remove(self, host: Host, remote_dir: str) -> None:
        """Best-effort cleanup of a remote workdir."""


class SSHCommandTransport(CommandTransport):
    """The real thing: ``ssh`` to run, ``scp -r`` to fetch."""

    name = "ssh"

    def __init__(self, ssh_options: Sequence[str] = ("-o", "BatchMode=yes"),
                 connect_timeout_s: float = 10.0) -> None:
        self.ssh_options = list(ssh_options) + [
            "-o", f"ConnectTimeout={int(connect_timeout_s)}"]

    def _shell_line(self, host: Host, argv: Sequence[str]) -> str:
        parts = []
        if host.cwd:
            parts.append(f"cd {shlex.quote(host.cwd)} &&")
        if host.env:
            parts.append("env " + " ".join(
                f"{key}={shlex.quote(value)}" for key, value in host.env))
        parts.append(" ".join(shlex.quote(arg) for arg in argv))
        return " ".join(parts)

    def run(self, host: Host, argv: Sequence[str],
            timeout: Optional[float] = None) -> Tuple[int, str]:
        command = (["ssh"] + self.ssh_options
                   + [host.name, self._shell_line(host, argv)])
        try:
            proc = subprocess.run(
                command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                timeout=timeout, text=True, errors="replace")
        except subprocess.TimeoutExpired as error:
            raise TransportError(
                f"ssh to {host.name} timed out after {timeout} s"
            ) from error
        except OSError as error:
            raise TransportError(f"cannot run ssh: {error}") from error
        if proc.returncode == 255:  # ssh's own failure, not the command's
            raise TransportError(
                f"ssh to {host.name} failed: {proc.stdout.strip()}")
        return proc.returncode, proc.stdout

    def fetch(self, host: Host, remote_dir: str, local_dir: str) -> None:
        os.makedirs(local_dir, exist_ok=True)
        source = f"{host.name}:{posixpath.join(remote_dir, '*')}"
        command = ["scp", "-q", "-r"] + self.ssh_options + [
            source, local_dir]
        proc = subprocess.run(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, errors="replace")
        if proc.returncode != 0:
            raise TransportError(
                f"scp from {host.name}:{remote_dir} failed: "
                f"{proc.stdout.strip()}")

    def remove(self, host: Host, remote_dir: str) -> None:
        # The workdir is a token-named directory this dispatch created;
        # quote it and ignore failures — cleanup must never sink a sweep.
        try:
            self.run(host, ["rm", "-rf", remote_dir], timeout=30)
        except TransportError:
            pass


class LocalCommandTransport(CommandTransport):
    """Run shard commands locally — the injectable ssh stand-in.

    ``host.name`` is ignored for execution (everything runs on this
    machine) but kept for status display, so ``--hosts a,b --transport
    local`` exercises multi-host scheduling, exclusion and retry logic
    with real subprocesses and no sshd.  ``python`` (default: this
    interpreter) overrides the command's interpreter so ``Host`` entries
    written for remote machines still run here.
    """

    name = "local"

    def __init__(self, python: Optional[str] = None) -> None:
        self.python = python or sys.executable

    def run(self, host: Host, argv: Sequence[str],
            timeout: Optional[float] = None) -> Tuple[int, str]:
        argv = [self.python] + list(argv[1:])
        env = dict(os.environ)
        env.update(dict(host.env))
        try:
            proc = subprocess.run(
                argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                timeout=timeout, text=True, errors="replace",
                cwd=host.cwd, env=env)
        except subprocess.TimeoutExpired as error:
            raise TransportError(
                f"shard on {host.name} timed out after {timeout} s"
            ) from error
        except OSError as error:
            raise TransportError(f"cannot run shard: {error}") from error
        return proc.returncode, proc.stdout

    def fetch(self, host: Host, remote_dir: str, local_dir: str) -> None:
        if not os.path.isdir(remote_dir):
            raise TransportError(f"no artifacts at {remote_dir}")
        shutil.copytree(remote_dir, local_dir, dirs_exist_ok=True)

    def remove(self, host: Host, remote_dir: str) -> None:
        shutil.rmtree(remote_dir, ignore_errors=True)


class SSHExecutor(Executor):
    """Dispatch shards across hosts through a :class:`CommandTransport`.

    Every shard submission takes one slot on its host (a host with
    ``slots=8`` runs up to 8 shards concurrently); submission threads
    block on the host's slot semaphore, so over-submission just queues.
    ``shards`` defaults to the total slot count — one busy slot per
    shard at full fan-out.
    """

    name = "ssh"

    def __init__(self, hosts: Sequence[Host],
                 transport: Optional[CommandTransport] = None,
                 shards: Optional[int] = None,
                 shard_timeout_s: Optional[float] = None,
                 remote_root: Optional[str] = None,
                 preflight: bool = True,
                 preflight_timeout_s: float = 30.0) -> None:
        if not hosts:
            raise ValueError("SSHExecutor needs at least one host")
        names = [host.name for host in hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host names: {', '.join(names)}")
        self.hosts = list(hosts)
        self.transport = transport or SSHCommandTransport()
        self._n_shards = (shards if shards is not None
                          else sum(host.slots for host in hosts))
        if self._n_shards < 1:
            raise ValueError("shards must be >= 1")
        self.shard_timeout_s = shard_timeout_s
        self.remote_root = remote_root or posixpath.join(
            ".repro-sweep-remote", f"dispatch-{os.getpid()}-{os.urandom(4).hex()}")
        self._slots: Dict[str, threading.Semaphore] = {
            host.name: threading.Semaphore(host.slots) for host in hosts}
        self._inflight: Dict[str, int] = {host.name: 0 for host in hosts}
        self._lock = threading.Lock()
        self._cancelled = threading.Event()
        self._registry = _HandleRegistry()
        self.preflight = preflight
        self.preflight_timeout_s = preflight_timeout_s
        #: Hosts dropped by the preflight check, name -> reason.
        self.preflight_failures: Dict[str, str] = {}
        self._preflight_done = not preflight
        self._preflight_lock = threading.Lock()

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def handles(self) -> List[ShardHandle]:
        return self._registry.ordered()

    def _pick_host(self, excluded: Sequence[str]) -> Host:
        with self._lock:
            usable = [host for host in self.hosts
                      if host.name not in excluded]
            if not usable:  # every host lost this shard once: start over
                usable = self.hosts
            # Least in-flight relative to capacity keeps wide hosts busy.
            chosen = min(usable, key=lambda host:
                         self._inflight[host.name] / host.slots)
            self._inflight[chosen.name] += 1
            return chosen

    def _check_host(self, host: Host) -> Optional[str]:
        """One host's preflight; returns a failure reason or None."""
        try:
            code, output = self.transport.run(
                host, [host.python, "-V"],
                timeout=self.preflight_timeout_s)
            if code != 0:
                return (f"{host.python} -V exited {code}: "
                        f"{output.strip() or '(no output)'}")
            code, output = self.transport.run(
                host, [host.python, "-c", "import repro"],
                timeout=self.preflight_timeout_s)
            if code != 0:
                tail = output.strip().splitlines()[-1:] or ["(no output)"]
                return (f"cannot import repro with {host.python} "
                        f"(set cwd/env in the hostfile?): {tail[0]}")
        except TransportError as error:
            return str(error)
        return None

    def _ensure_preflight(self) -> None:
        """Check every host's python + repro import before dispatching.

        A host that fails is dropped from the rotation (the shard goes
        elsewhere); only when *no* host survives does the sweep itself
        fail, with every host's reason in the message.
        """
        with self._preflight_lock:
            if self._preflight_done:
                return
            for host in self.hosts:
                reason = self._check_host(host)
                if reason is not None:
                    self.preflight_failures[host.name] = reason
            usable = [host for host in self.hosts
                      if host.name not in self.preflight_failures]
            if not usable:
                details = "; ".join(
                    f"{name}: {reason}" for name, reason
                    in sorted(self.preflight_failures.items()))
                raise TransportError(
                    f"preflight failed on all "
                    f"{len(self.hosts)} host(s) — {details}")
            self.hosts = usable
            self._preflight_done = True

    def submit(self, spec: ShardSpec, *, excluded_hosts=()) -> ShardHandle:
        self._ensure_preflight()
        host = self._pick_host(excluded_hosts)
        handle = ShardHandle(spec, host=host.name)
        thread = threading.Thread(
            target=self._run_shard, args=(handle, host), daemon=True)
        handle.worker = thread
        self._registry.track(handle)
        thread.start()
        return handle

    def _run_shard(self, handle: ShardHandle, host: Host) -> None:
        spec = handle.spec
        remote_out = posixpath.join(
            self.remote_root, f"shard-{spec.index}-try{handle.attempts}")
        argv = spec.command(host.python, out_dir=remote_out, heartbeat="")
        with self._slots[host.name]:
            started = time.monotonic()
            try:
                if self._cancelled.is_set():
                    raise TransportError("dispatch cancelled")
                returncode, output = self.transport.run(
                    host, argv, timeout=self.shard_timeout_s)
                if returncode == 0:
                    self.transport.fetch(host, remote_out, spec.out_dir)
                    if not os.path.exists(
                            os.path.join(spec.out_dir, "sweep.json")):
                        raise TransportError(
                            f"shard fetched without sweep.json from "
                            f"{host.name}:{remote_out}")
                    self.transport.remove(host, remote_out)
                    handle.status = SHARD_OK
                else:
                    tail = output.strip().splitlines()[-1:] or [""]
                    handle.status = SHARD_FAILED if returncode in (1, 2) \
                        else SHARD_LOST
                    handle.error = (f"shard on {host.name} exited "
                                    f"{returncode}: {tail[0]}")
            except TransportError as error:
                handle.status = SHARD_LOST
                handle.error = str(error)
            except Exception as error:  # pragma: no cover - defensive
                handle.status = SHARD_LOST
                handle.error = f"{type(error).__name__}: {error}"
            finally:
                handle.wall_s = time.monotonic() - started
                with self._lock:
                    self._inflight[host.name] -= 1

    def poll(self) -> List[ShardHandle]:
        return self._registry.ordered()

    def collect(self) -> List[str]:
        handles = self._registry.ordered()
        if all(handle.status == SHARD_OK for handle in handles):
            # Dispatch is over, nothing races: drop the per-dispatch
            # workdir on every host that ran a shard.
            used = {handle.host for handle in handles}
            for host in self.hosts:
                if host.name in used:
                    self.transport.remove(host, self.remote_root)
        return [handle.spec.out_dir for handle in handles
                if handle.status == SHARD_OK]

    def cancel(self) -> None:
        # Threads blocked on a slot abort on wake; in-flight remote
        # commands run to completion (their results are ignored).
        self._cancelled.set()


def wait_idle(executor: SSHExecutor, timeout_s: float = 60.0) -> None:
    """Join all submission threads — test helper, not part of dispatch."""
    deadline = time.monotonic() + timeout_s
    for handle in executor.handles:
        thread = handle.worker
        if isinstance(thread, threading.Thread):
            thread.join(max(0.0, deadline - time.monotonic()))
