"""Shards as supervised child ``python -m repro sweep`` processes.

Each shard runs ``python -m repro sweep <exp> --shard i/n --out DIR
--heartbeat FILE`` as a child process with stdout/stderr captured to
``shard.log`` inside its artifact directory.  Supervision is three
checks per poll:

* **exit status** — 0 with a ``sweep.json`` is ``ok``; positive exit
  codes (bad config, ``--strict`` abort) are ``failed`` and never
  re-dispatched; death by signal is ``lost``;
* **heartbeat** — the child touches its heartbeat file continuously
  (see ``--heartbeat`` in the sweep CLI); a heartbeat older than
  ``heartbeat_timeout_s`` means the process is wedged or stopped, so it
  is killed and marked ``lost``;
* **shard timeout** — a shard running longer than ``shard_timeout_s``
  wall-clock is killed and marked ``lost``.

A re-dispatched shard shares the parent's result cache, so every cell
the killed attempt finished is answered from cache instead of re-run.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from typing import List, Optional

from repro.sweep.executors.base import (
    SHARD_FAILED,
    SHARD_LOST,
    SHARD_OK,
    SHARD_RUNNING,
    Executor,
    ShardHandle,
    ShardSpec,
    _HandleRegistry,
)


class SubprocessShardExecutor(Executor):
    """Dispatch shards as supervised local child processes."""

    name = "subprocess"
    wants_heartbeat = True

    def __init__(self, shards: int = 2,
                 python: Optional[str] = None,
                 heartbeat_timeout_s: Optional[float] = None,
                 shard_timeout_s: Optional[float] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if heartbeat_timeout_s is not None and heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat_timeout_s must be positive")
        if shard_timeout_s is not None and shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive")
        self._n_shards = shards
        self.python = python or sys.executable
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.shard_timeout_s = shard_timeout_s
        self._registry = _HandleRegistry()

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def handles(self) -> List[ShardHandle]:
        return self._registry.ordered()

    def submit(self, spec: ShardSpec, *, excluded_hosts=()) -> ShardHandle:
        os.makedirs(spec.out_dir, exist_ok=True)
        manifest = os.path.join(spec.out_dir, "sweep.json")
        if os.path.exists(manifest):  # stale artifact from a killed attempt
            os.unlink(manifest)
        log = open(os.path.join(spec.out_dir, "shard.log"), "ab")
        try:
            process = subprocess.Popen(
                spec.command(self.python), stdout=log,
                stderr=subprocess.STDOUT)
        finally:
            log.close()  # the child holds its own descriptor
        handle = ShardHandle(spec, host="localhost", pid=process.pid,
                             worker=(process, time.monotonic()))
        return self._registry.track(handle)

    def poll(self) -> List[ShardHandle]:
        for handle in self._registry.ordered():
            if handle.status == SHARD_RUNNING:
                self._check(handle)
        return self._registry.ordered()

    def _check(self, handle: ShardHandle) -> None:
        process, started = handle.worker
        returncode = process.poll()
        if returncode is None:
            stale = self._stale_reason(handle, started)
            if stale:
                process.kill()
                process.wait(timeout=10)
                handle.status = SHARD_LOST
                handle.error = stale
            return
        handle.wall_s = time.monotonic() - started
        if returncode == 0:
            manifest = os.path.join(handle.spec.out_dir, "sweep.json")
            if os.path.exists(manifest):
                handle.status = SHARD_OK
            else:
                handle.status = SHARD_FAILED
                handle.error = "shard exited 0 without writing sweep.json"
        elif returncode < 0:
            handle.status = SHARD_LOST
            handle.error = f"shard killed by signal {-returncode}"
        else:
            handle.status = SHARD_FAILED
            handle.error = (f"shard exited with status {returncode} "
                            f"(see {handle.spec.out_dir}/shard.log)")

    def _stale_reason(self, handle: ShardHandle,
                      started: float) -> Optional[str]:
        now = time.monotonic()
        if self.shard_timeout_s is not None \
                and now - started > self.shard_timeout_s:
            return (f"shard exceeded timeout of "
                    f"{self.shard_timeout_s} s")
        if self.heartbeat_timeout_s is None or not handle.spec.heartbeat:
            return None
        try:
            age = time.time() - os.path.getmtime(handle.spec.heartbeat)
        except OSError:
            # No heartbeat yet: measure from process start so a child
            # that wedges before its first beat is still caught.
            age = now - started
        if age > self.heartbeat_timeout_s:
            return (f"shard heartbeat stale for {age:.1f} s "
                    f"(limit {self.heartbeat_timeout_s} s)")
        return None

    def collect(self) -> List[str]:
        return [handle.spec.out_dir for handle in self._registry.ordered()
                if handle.status == SHARD_OK]

    def cancel(self) -> None:
        for handle in self._registry.ordered():
            if handle.status != SHARD_RUNNING:
                continue
            process, _started = handle.worker
            if process.poll() is None:
                process.kill()
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            handle.status = SHARD_LOST
            handle.error = handle.error or "cancelled"
