"""Structured sweep artifacts: a JSON manifest plus per-run/aggregate CSV.

Artifact schema (``sweep.json``, ``schema: repro.sweep/v3``; the merge
path also still reads ``repro.sweep/v2`` manifests)::

    {
      "schema": "repro.sweep/v3",
      "experiment": "fig6_6",
      "root_seed": 0,
      "params": {...},            # fixed parameters
      "grid": {...},              # swept axes (name -> values)
      "n_runs": 8, "seeds": 8, "jobs": 4,
      "n_failed": 0,              # cells that exhausted their retries
      "n_total": 8,               # full unsharded run count
      "shard": {"index": 0, "count": 2} | null,
      "code_version": "deadbeef01234567",
      "cache": {"hits": 0, "misses": 8, "dir": ".repro-cache"},
      "elapsed_s": 4.2,
      "dispatch": null | {        # executor-dispatched sweeps only
        "executor": "subprocess", "n_shards": 2,
        "shards": [ {"index", "status": "ok"|"failed"|"lost"|"running",
                     "attempts", "host", "error"}, ... ]
      },
      "runs": [ {"seed_index", "seed", "params", "elapsed_s", "cached",
                 "status": "ok"|"failed", "attempts",
                 "result_type", "result": {...} | null,
                 "error": {kind, type, message}?} , ... ],
      "aggregate": { "<dotted.field>": {n, mean, median, std,
                                        min, max, ci95}, ... }
    }

``runs.csv`` holds one row per run with the flattened numeric result
fields as columns (blank for failed runs); ``aggregate.csv`` one row per
aggregated field, computed over successful runs only.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, List

from repro.sweep.aggregate import flatten_numeric
from repro.sweep.runner import MANIFEST_SCHEMA

__all__ = ["MANIFEST_SCHEMA", "write_sweep_artifacts"]


def write_sweep_artifacts(sweep, out_dir: str) -> Dict[str, str]:
    """Write ``sweep.json``, ``runs.csv`` and ``aggregate.csv``.

    ``sweep`` is a :class:`repro.sweep.runner.SweepResult`.  Returns the
    mapping of artifact name to written path.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "sweep.json": os.path.join(out_dir, "sweep.json"),
        "runs.csv": os.path.join(out_dir, "runs.csv"),
        "aggregate.csv": os.path.join(out_dir, "aggregate.csv"),
    }

    with open(paths["sweep.json"], "w") as handle:
        json.dump(sweep.manifest(), handle, indent=2, default=str)
        handle.write("\n")

    flat_runs: List[Dict[str, object]] = []
    numeric_columns: List[str] = []
    for record in sweep.records:
        flat = (flatten_numeric(record.get("result") or {})
                if record.get("status", "ok") == "ok" else {})
        for column in flat:
            if column not in numeric_columns:
                numeric_columns.append(column)
        flat_runs.append(flat)
    with open(paths["runs.csv"], "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["experiment", "seed_index", "seed", "params",
                         "cached", "status", "elapsed_s"]
                        + numeric_columns)
        for record, flat in zip(sweep.records, flat_runs):
            writer.writerow(
                [record["experiment"], record["seed_index"], record["seed"],
                 json.dumps(record["params"], sort_keys=True, default=str),
                 int(bool(record.get("cached"))),
                 record.get("status", "ok"),
                 f"{record.get('elapsed_s', 0.0):.4f}"]
                + [flat.get(column, "") for column in numeric_columns])

    with open(paths["aggregate.csv"], "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["field", "n", "mean", "median", "std",
                         "min", "max", "ci95"])
        for field, stats in sweep.aggregate.items():
            writer.writerow([field, stats["n"], stats["mean"],
                             stats["median"], stats["std"], stats["min"],
                             stats["max"], stats["ci95"]])
    return paths
