"""Structured sweep artifacts: a JSON manifest plus per-run/aggregate CSV.

Artifact schema (``sweep.json``, ``schema: repro.sweep/v1``)::

    {
      "schema": "repro.sweep/v1",
      "experiment": "fig6_6",
      "root_seed": 0,
      "params": {...},            # fixed parameters
      "grid": {...},              # swept axes (name -> values)
      "n_runs": 8, "seeds": 8, "jobs": 4,
      "code_version": "deadbeef01234567",
      "cache": {"hits": 0, "misses": 8, "dir": ".repro-cache"},
      "elapsed_s": 4.2,
      "runs": [ {"seed_index", "seed", "params", "elapsed_s",
                 "cached", "result": {...}} , ... ],
      "aggregate": { "<dotted.field>": {n, mean, median, std,
                                        min, max, ci95}, ... }
    }

``runs.csv`` holds one row per run with the flattened numeric result
fields as columns; ``aggregate.csv`` one row per aggregated field.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import os
from typing import Dict, List, Mapping

from repro.sweep.aggregate import flatten_numeric

MANIFEST_SCHEMA = "repro.sweep/v1"


def result_to_dict(result) -> object:
    """Serialize any experiment result to JSON-safe plain data.

    Prefers the type's own ``to_dict``; falls back to dataclass fields,
    containers, then ``repr`` for anything exotic.
    """
    if hasattr(result, "to_dict"):
        return result_to_dict(result.to_dict())
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {f.name: result_to_dict(getattr(result, f.name))
                for f in dataclasses.fields(result)}
    if isinstance(result, Mapping):
        return {str(k): result_to_dict(v) for k, v in result.items()}
    if isinstance(result, (list, tuple, set, frozenset)):
        items = sorted(result) if isinstance(result, (set, frozenset)) else result
        return [result_to_dict(v) for v in items]
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    return repr(result)


def write_sweep_artifacts(sweep, out_dir: str) -> Dict[str, str]:
    """Write ``sweep.json``, ``runs.csv`` and ``aggregate.csv``.

    ``sweep`` is a :class:`repro.sweep.runner.SweepResult`.  Returns the
    mapping of artifact name to written path.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "sweep.json": os.path.join(out_dir, "sweep.json"),
        "runs.csv": os.path.join(out_dir, "runs.csv"),
        "aggregate.csv": os.path.join(out_dir, "aggregate.csv"),
    }

    with open(paths["sweep.json"], "w") as handle:
        json.dump(sweep.manifest(), handle, indent=2, default=str)
        handle.write("\n")

    flat_runs: List[Dict[str, object]] = []
    numeric_columns: List[str] = []
    for record in sweep.records:
        flat = flatten_numeric(record.get("result", {}))
        for column in flat:
            if column not in numeric_columns:
                numeric_columns.append(column)
        flat_runs.append(flat)
    with open(paths["runs.csv"], "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["experiment", "seed_index", "seed", "params",
                         "cached", "elapsed_s"] + numeric_columns)
        for record, flat in zip(sweep.records, flat_runs):
            writer.writerow(
                [record["experiment"], record["seed_index"], record["seed"],
                 json.dumps(record["params"], sort_keys=True, default=str),
                 int(bool(record.get("cached"))),
                 f"{record.get('elapsed_s', 0.0):.4f}"]
                + [flat.get(column, "") for column in numeric_columns])

    with open(paths["aggregate.csv"], "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["field", "n", "mean", "median", "std",
                         "min", "max", "ci95"])
        for field, stats in sweep.aggregate.items():
            writer.writerow([field, stats["n"], stats["mean"],
                             stats["median"], stats["std"], stats["min"],
                             stats["max"], stats["ci95"]])
    return paths
