"""Union shard ``sweep.json`` manifests into one aggregate sweep.

``python -m repro merge <dir>... --out DIR`` reads the manifest each
shard wrote, validates that the shards describe the *same* sweep
(identical experiment, params, grid, seeds, root seed and code version)
and are *disjoint* (no run claimed twice), re-orders the union into the
canonical unsharded run order, recomputes the aggregate statistics, and
writes artifacts identical to what a single-host run of the whole sweep
would have produced — ``aggregate.csv`` matches bit-for-bit.

Merging needs no experiment registry: the run order is reconstructed by
re-expanding the (grid x seeds) coordinates recorded in the manifest,
which is a pure function shared with the runner.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.obs.telemetry import merge_telemetry
from repro.sweep.aggregate import aggregate_records
from repro.sweep.grid import RunSpec, expand_grid
from repro.sweep.runner import SweepResult

MERGEABLE_SCHEMAS = ("repro.sweep/v2", "repro.sweep/v3",
                     "repro.sweep/v4")

#: Manifest fields that must agree across every shard of one sweep.
#: The schema version is checked separately (with a per-shard error
#: message) before these are compared.
COORDINATE_FIELDS = ("experiment", "root_seed", "seeds",
                     "params", "grid", "n_total", "code_version")


class MergeError(ValueError):
    """Shard manifests that cannot be merged into one sweep."""


def load_manifest(directory: str) -> dict:
    """Read and sanity-check one shard's ``sweep.json``."""
    path = os.path.join(directory, "sweep.json")
    try:
        with open(path, "r") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise MergeError(f"{directory}: no sweep.json found") from None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise MergeError(f"{path}: unreadable manifest "
                         f"({error})") from None
    if not isinstance(manifest, dict) \
            or manifest.get("schema") not in MERGEABLE_SCHEMAS:
        raise MergeError(
            f"{path}: schema {manifest.get('schema')!r} is not "
            f"mergeable; expected one of "
            f"{', '.join(MERGEABLE_SCHEMAS)}")
    manifest["_source"] = path
    return manifest


def _coordinates(manifest: dict) -> dict:
    return {name: manifest.get(name) for name in COORDINATE_FIELDS}


def _record_key(record: dict) -> str:
    """A record's cell identity: its grid point plus seed index."""
    spec = RunSpec(record["experiment"],
                   tuple(sorted(record["params"].items())),
                   record["seed_index"], record["seed"])
    return spec.run_key


def merge_manifests(manifests: Sequence[dict]) -> SweepResult:
    """Union validated shard manifests into one in-order SweepResult."""
    if not manifests:
        raise MergeError("nothing to merge")
    first = manifests[0]
    for manifest in manifests[1:]:
        if manifest.get("schema") != first.get("schema"):
            raise MergeError(
                f"mixed manifest schemas: {manifest['_source']} has "
                f"schema {manifest.get('schema')!r} but "
                f"{first['_source']} has {first.get('schema')!r}; "
                f"re-run the divergent shard so all shards share one "
                f"schema version")
    reference = _coordinates(first)
    for manifest in manifests[1:]:
        coords = _coordinates(manifest)
        if coords != reference:
            diffs = [name for name in COORDINATE_FIELDS
                     if coords[name] != reference[name]]
            raise MergeError(
                f"{manifest['_source']}: sweep coordinates differ from "
                f"{first['_source']} in: {', '.join(diffs)}")

    by_key: Dict[str, dict] = {}
    for manifest in manifests:
        for record in manifest.get("runs", []):
            key = _record_key(record)
            if key in by_key:
                raise MergeError(
                    f"shards are not disjoint: run "
                    f"(params={record['params']}, "
                    f"seed_index={record['seed_index']}) appears in "
                    f"more than one shard")
            by_key[key] = record

    # Reconstruct the canonical unsharded order from the coordinates.
    runs = list(by_key.values())
    accepts_seed = any(record["seed"] is not None for record in runs)
    specs = expand_grid(first["experiment"], first["params"],
                        first["grid"], first["seeds"],
                        first["root_seed"], accepts_seed=accepts_seed)
    missing = [spec for spec in specs if spec.run_key not in by_key]
    if missing:
        cells = ", ".join(
            f"(params={dict(spec.params)}, seed_index={spec.seed_index})"
            for spec in missing[:5])
        raise MergeError(
            f"merged shards cover {len(by_key)}/{len(specs)} runs; "
            f"missing {len(missing)} cell(s), e.g. {cells}")
    extra = len(by_key) - len(specs)
    if extra:
        raise MergeError(
            f"merged shards contain {extra} run(s) outside the sweep's "
            f"own (grid x seeds) expansion")

    records = [by_key[spec.run_key] for spec in specs]
    aggregate = aggregate_records(
        [record["result"] for record in records
         if record.get("status", "ok") == "ok"])
    return SweepResult(
        experiment=first["experiment"],
        root_seed=first["root_seed"],
        seeds=first["seeds"],
        jobs=max(manifest.get("jobs", 1) for manifest in manifests),
        params=dict(first["params"]),
        grid={k: list(v) for k, v in first["grid"].items()},
        specs=specs,
        records=records,
        aggregate=aggregate,
        cache_hits=sum(m.get("cache", {}).get("hits", 0)
                       for m in manifests),
        cache_misses=sum(m.get("cache", {}).get("misses", 0)
                         for m in manifests),
        cache_dir=first.get("cache", {}).get("dir"),
        code_version=first["code_version"],
        elapsed_s=sum(m.get("elapsed_s", 0.0) for m in manifests),
        shard=None,
        n_total=len(specs),
        telemetry=merge_telemetry(
            [m.get("telemetry") for m in manifests]),
    )


def merge_sweep_dirs(directories: Sequence[str]) -> SweepResult:
    """Load every directory's manifest and merge them."""
    if not directories:
        raise MergeError("no sweep directories given")
    return merge_manifests([load_manifest(d) for d in directories])


def merge_sweeps(directories: Sequence[str],
                 out_dir: Optional[str] = None) -> SweepResult:
    """Programmatic merge: union shard directories, optionally write.

    The library-facing twin of ``python -m repro merge``: validates and
    merges each directory's ``sweep.json`` and, when ``out_dir`` is
    given, writes the merged ``sweep.json``/``runs.csv``/
    ``aggregate.csv`` there (paths land in ``result.artifact_paths``).
    """
    from repro.sweep.artifacts import write_sweep_artifacts

    merged = merge_sweep_dirs(directories)
    if out_dir is not None:
        write_sweep_artifacts(merged, out_dir)
    return merged


def shard_summary(manifests: Sequence[dict]) -> List[str]:
    """One human line per shard, for merge progress output."""
    lines = []
    for manifest in manifests:
        shard = manifest.get("shard")
        label = (f"shard {shard['index']}/{shard['count']}" if shard
                 else "unsharded")
        lines.append(f"{manifest['_source']}: {label}, "
                     f"{manifest.get('n_runs', 0)} runs, "
                     f"{manifest.get('n_failed', 0)} failed")
    return lines
