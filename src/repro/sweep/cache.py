"""Content-addressed on-disk result cache for sweeps.

Entries live under ``.repro-cache/<experiment>/<key>.json`` where the key
is a SHA-256 over (experiment name, grid-point parameters, derived seed,
code version).  The code version is itself a content hash of every
``repro`` source file, so editing any module invalidates all prior
entries without bookkeeping.  A corrupted or mismatched entry is deleted
and treated as a miss — the cache is a pure accelerator, never a source
of truth.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from repro.sweep.grid import RunSpec

DEFAULT_CACHE_DIR = ".repro-cache"
ENTRY_SCHEMA = "repro.sweep.cache/v1"

_code_version_memo: Dict[str, str] = {}


def code_version() -> str:
    """Content hash of the installed ``repro`` package's sources."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    memo = _code_version_memo.get(root)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    version = digest.hexdigest()[:16]
    _code_version_memo[root] = version
    return version


class ResultCache:
    """Load/store per-run result records keyed by run content hash."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 version: Optional[str] = None,
                 enabled: bool = True) -> None:
        self.root = root
        self.version = version if version is not None else code_version()
        self.enabled = enabled

    def key(self, spec: RunSpec) -> str:
        payload = json.dumps({
            "experiment": spec.experiment,
            "params": dict(spec.params),
            "seed": spec.seed,
            "seed_index": spec.seed_index,
            "code_version": self.version,
        }, sort_keys=True, separators=(",", ":"), default=str)
        return hashlib.sha256(payload.encode()).hexdigest()

    def path(self, spec: RunSpec) -> str:
        return os.path.join(self.root, spec.experiment,
                            self.key(spec) + ".json")

    def load(self, spec: RunSpec) -> Optional[dict]:
        """Return the cached record, or None on miss/corruption."""
        if not self.enabled:
            return None
        path = self.path(spec)
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            return None
        if (not isinstance(entry, dict)
                or entry.get("schema") != ENTRY_SCHEMA
                or entry.get("key") != self.key(spec)
                or not isinstance(entry.get("record"), dict)):
            self._discard(path)
            return None
        return entry["record"]

    def store(self, spec: RunSpec, record: dict) -> None:
        """Atomically persist one run record (temp file + rename)."""
        if not self.enabled:
            return
        path = self.path(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": self.key(spec),
            "experiment": spec.experiment,
            "params": dict(spec.params),
            "seed": spec.seed,
            "seed_index": spec.seed_index,
            "code_version": self.version,
            "record": record,
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, default=str)
            os.replace(tmp_path, path)
        except BaseException:
            self._discard(tmp_path)
            raise

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
