"""Content-addressed on-disk result cache for sweeps, with LRU eviction.

Entries live under ``.repro-cache/<experiment>/<key>.json`` where the key
is a SHA-256 over (experiment name, grid-point parameters, derived seed,
code version).  The code version is itself a content hash of every
``repro`` source file, so editing any module invalidates all prior
entries without bookkeeping.  A corrupted or mismatched entry is deleted
and treated as a miss — the cache is a pure accelerator, never a source
of truth.

A sidecar ``index.json`` tracks each entry's size and last-use time so
the cache can be size-capped (``max_bytes``): when a store pushes the
total over the cap, least-recently-used entries are deleted until it
fits.  Index updates happen under an ``fcntl`` file lock with
write-temp-then-rename, so concurrent sweep processes sharing one cache
directory (e.g. two shards on one host) never corrupt it; losing a race
at worst re-records a timestamp.  ``max_bytes=None`` (the default)
keeps the historical unbounded behavior.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.sweep.grid import RunSpec

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

DEFAULT_CACHE_DIR = ".repro-cache"
ENTRY_SCHEMA = "repro.sweep.cache/v1"
INDEX_NAME = "index.json"
LOCK_NAME = "index.lock"

_code_version_memo: Dict[str, str] = {}


def code_version() -> str:
    """Content hash of the installed ``repro`` package's sources."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    memo = _code_version_memo.get(root)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    version = digest.hexdigest()[:16]
    _code_version_memo[root] = version
    return version


class ResultCache:
    """Load/store per-run result records keyed by run content hash."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 version: Optional[str] = None,
                 enabled: bool = True,
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.root = root
        self.version = version if version is not None else code_version()
        self.enabled = enabled
        self.max_bytes = max_bytes
        #: Wall-domain effectiveness counters for sweep telemetry.
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "stores": 0, "evictions": 0}

    def key(self, spec: RunSpec) -> str:
        payload = json.dumps({
            "experiment": spec.experiment,
            "params": dict(spec.params),
            "seed": spec.seed,
            "seed_index": spec.seed_index,
            "code_version": self.version,
        }, sort_keys=True, separators=(",", ":"), default=str)
        return hashlib.sha256(payload.encode()).hexdigest()

    def path(self, spec: RunSpec) -> str:
        return os.path.join(self.root, spec.experiment,
                            self.key(spec) + ".json")

    def load(self, spec: RunSpec) -> Optional[dict]:
        """Return the cached record, or None on miss/corruption."""
        if not self.enabled:
            return None
        path = self.path(spec)
        try:
            with open(path, "r") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            self.stats["misses"] += 1
            return None
        if (not isinstance(entry, dict)
                or entry.get("schema") != ENTRY_SCHEMA
                or entry.get("key") != self.key(spec)
                or not isinstance(entry.get("record"), dict)):
            self._discard(path)
            self.stats["misses"] += 1
            return None
        self._record_use(path)
        self.stats["hits"] += 1
        return entry["record"]

    def store(self, spec: RunSpec, record: dict) -> None:
        """Atomically persist one run record (temp file + rename)."""
        if not self.enabled:
            return
        path = self.path(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": self.key(spec),
            "experiment": spec.experiment,
            "params": dict(spec.params),
            "seed": spec.seed,
            "seed_index": spec.seed_index,
            "code_version": self.version,
            "record": record,
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, default=str)
            os.replace(tmp_path, path)
        except BaseException:
            self._discard(tmp_path)
            raise
        self._record_use(path)
        self.stats["stores"] += 1

    # -- LRU index ---------------------------------------------------------

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_NAME)

    @contextmanager
    def _index_lock(self):
        """Serialize index read-modify-write across processes."""
        os.makedirs(self.root, exist_ok=True)
        with open(os.path.join(self.root, LOCK_NAME), "w") as lock:
            if fcntl is not None:
                fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(lock, fcntl.LOCK_UN)

    def _read_index(self) -> Dict[str, Dict[str, float]]:
        try:
            with open(self.index_path, "r") as handle:
                index = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}
        return index if isinstance(index, dict) else {}

    def _write_index(self, index: Dict[str, Dict[str, float]]) -> None:
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(index, handle)
            os.replace(tmp_path, self.index_path)
        except BaseException:
            self._discard(tmp_path)
            raise

    def _record_use(self, path: str) -> None:
        """Bump one entry's last-use row; evict if over the size cap."""
        with self._index_lock():
            index = self._read_index()
            try:
                size = os.path.getsize(path)
            except OSError:
                return
            index[os.path.relpath(path, self.root)] = {
                "size": size, "used": time.time()}
            if self.max_bytes is not None:
                self.stats["evictions"] += len(self._evict_locked(index))
            self._write_index(index)

    def _entries_on_disk(self) -> Dict[str, os.stat_result]:
        entries: Dict[str, os.stat_result] = {}
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if not filename.endswith(".json"):
                    continue
                path = os.path.join(dirpath, filename)
                if os.path.abspath(path) == os.path.abspath(self.index_path):
                    continue
                try:
                    entries[os.path.relpath(path, self.root)] = os.stat(path)
                except OSError:
                    continue
        return entries

    def _evict_locked(self, index: Dict[str, Dict[str, float]]) -> List[str]:
        """Delete LRU entries until the cache fits ``max_bytes``.

        Reconciles the index against the directory first: rows for
        vanished files are dropped, untracked entry files (pre-index
        caches, racing writers) are adopted with their mtime as the
        last-use time.
        """
        on_disk = self._entries_on_disk()
        for rel in list(index):
            if rel not in on_disk:
                del index[rel]
        for rel, stat in on_disk.items():
            if rel not in index:
                index[rel] = {"size": stat.st_size, "used": stat.st_mtime}
        total = sum(row["size"] for row in index.values())
        evicted: List[str] = []
        for rel in sorted(index, key=lambda r: index[r]["used"]):
            if total <= self.max_bytes:
                break
            self._discard(os.path.join(self.root, rel))
            total -= index[rel]["size"]
            del index[rel]
            evicted.append(rel)
        return evicted

    def evict(self) -> List[str]:
        """Run one eviction cycle now; returns evicted entry paths."""
        if self.max_bytes is None or not self.enabled:
            return []
        with self._index_lock():
            index = self._read_index()
            evicted = self._evict_locked(index)
            self._write_index(index)
        self.stats["evictions"] += len(evicted)
        return evicted

    def size_bytes(self) -> int:
        """Total bytes of entry files currently on disk."""
        return sum(stat.st_size
                   for stat in self._entries_on_disk().values())

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
