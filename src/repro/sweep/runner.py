"""Process-pool sweep orchestration.

:func:`run_sweep` expands a (grid x seeds) run list, answers what it can
from the on-disk cache, fans the remaining runs across a
``ProcessPoolExecutor`` (``jobs=1`` runs inline, bit-identical to the
pool path since every run is fully determined by its :class:`RunSpec`),
aggregates the serialized results, and hands back a
:class:`SweepResult` ready for the artifact writer.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.sweep.aggregate import aggregate_records
from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.sweep.grid import RunSpec, expand_grid


def execute_spec(payload: dict) -> dict:
    """Run one sweep cell — the worker-process entry point.

    Takes the plain-dict payload of a :class:`RunSpec` (name + kwargs
    only, so it pickles trivially) and returns a serialized run record.
    """
    from repro.eval.registry import run_experiment
    from repro.sweep.artifacts import result_to_dict

    params = {key: value for key, value in payload["params"]}
    call_params = dict(params)
    if payload["seed"] is not None:
        call_params["seed"] = payload["seed"]
    started = time.perf_counter()
    result = run_experiment(payload["experiment"], call_params)
    elapsed = time.perf_counter() - started
    return {
        "experiment": payload["experiment"],
        "seed_index": payload["seed_index"],
        "seed": payload["seed"],
        "params": params,
        "elapsed_s": elapsed,
        "result": result_to_dict(result),
    }


@dataclass
class SweepResult:
    """Everything one sweep produced, pre-aggregation included."""

    experiment: str
    root_seed: int
    seeds: int
    jobs: int
    params: Dict[str, object]
    grid: Dict[str, List[object]]
    specs: List[RunSpec]
    records: List[dict]  # same order as specs
    aggregate: Dict[str, Dict[str, float]]
    cache_hits: int
    cache_misses: int
    cache_dir: Optional[str]
    code_version: str
    elapsed_s: float = 0.0
    artifact_paths: Dict[str, str] = field(default_factory=dict)

    @property
    def n_runs(self) -> int:
        return len(self.records)

    def manifest(self) -> dict:
        return {
            "schema": "repro.sweep/v1",
            "experiment": self.experiment,
            "root_seed": self.root_seed,
            "seeds": self.seeds,
            "jobs": self.jobs,
            "params": dict(self.params),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "n_runs": self.n_runs,
            "code_version": self.code_version,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses,
                      "dir": self.cache_dir},
            "elapsed_s": self.elapsed_s,
            "runs": self.records,
            "aggregate": self.aggregate,
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"sweep {self.experiment}: {self.n_runs} runs "
            f"({self.seeds} seeds x {max(1, self.n_runs // max(1, self.seeds))} "
            f"grid points), jobs={self.jobs}",
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses "
            f"({self.cache_dir or 'disabled'})",
            f"elapsed: {self.elapsed_s:.2f} s",
        ]
        for path in sorted(self.artifact_paths.values()):
            lines.append(f"wrote {path}")
        return lines


def run_sweep(
    experiment: str,
    *,
    seeds: int = 8,
    jobs: int = 1,
    params: Optional[Mapping[str, object]] = None,
    grid: Optional[Mapping[str, Sequence[object]]] = None,
    root_seed: int = 0,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    cache_dir: str = DEFAULT_CACHE_DIR,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run ``experiment`` across (grid x seeds), cached and in parallel."""
    from repro.eval import registry

    spec_entry = registry.get(experiment)  # raises KeyError when unknown
    params = dict(params or {})
    grid = {key: list(values) for key, values in (grid or {}).items()}
    overlap = set(params) & set(grid)
    if overlap:
        raise ValueError(
            f"parameter(s) {', '.join(sorted(overlap))} appear in both "
            f"--param and --grid")
    if "seed" in params or "seed" in grid:
        raise ValueError("control seeds via --seeds/--root-seed, "
                         "not --param/--grid seed=...")
    for key in list(params) + list(grid):
        if key not in spec_entry.param_names:
            raise ValueError(
                f"experiment {experiment!r} does not accept parameter "
                f"{key!r}; accepted: "
                f"{', '.join(spec_entry.param_names) or '(none)'}")

    n_seeds = seeds if spec_entry.accepts_seed else 1
    if not spec_entry.accepts_seed and seeds > 1 and progress is not None:
        progress(f"note: {experiment} takes no seed parameter; "
                 f"running 1 deterministic run per grid point")
    specs = expand_grid(experiment, params, grid, n_seeds, root_seed,
                        accepts_seed=spec_entry.accepts_seed)

    if cache is None:
        cache = ResultCache(cache_dir, enabled=use_cache)
    started = time.perf_counter()
    records: List[Optional[dict]] = [None] * len(specs)
    pending: List[int] = []
    hits = 0
    for index, spec in enumerate(specs):
        cached = cache.load(spec)
        if cached is not None:
            record = dict(cached)
            record["cached"] = True
            records[index] = record
            hits += 1
        else:
            pending.append(index)
    if progress is not None and hits:
        progress(f"cache: {hits}/{len(specs)} runs already computed")

    if pending:
        payloads = [specs[index].payload() for index in pending]
        if jobs <= 1 or len(pending) == 1:
            fresh = [execute_spec(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending))) as pool:
                fresh = list(pool.map(execute_spec, payloads))
        for done, (index, record) in enumerate(zip(pending, fresh), 1):
            cache.store(specs[index], record)
            record = dict(record)
            record["cached"] = False
            records[index] = record
            if progress is not None:
                progress(
                    f"run {done}/{len(pending)}: seed_index="
                    f"{specs[index].seed_index} seed={specs[index].seed} "
                    f"({record['elapsed_s']:.2f} s)")

    aggregate = aggregate_records([record["result"] for record in records])
    return SweepResult(
        experiment=experiment,
        root_seed=root_seed,
        seeds=n_seeds,
        jobs=jobs,
        params=params,
        grid=grid,
        specs=specs,
        records=records,  # type: ignore[arg-type]
        aggregate=aggregate,
        cache_hits=hits,
        cache_misses=len(pending),
        cache_dir=cache.root if cache.enabled else None,
        code_version=cache.version,
        elapsed_s=time.perf_counter() - started,
    )
