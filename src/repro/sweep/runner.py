"""Fault-tolerant, shardable process-pool sweep orchestration.

:func:`run_sweep` expands a (grid x seeds) run list, optionally keeps
only its shard of it (``shard=(i, n)`` — every host that expands the
same coordinates agrees on the partition), answers what it can from the
on-disk cache, and fans the remaining cells across a
``ProcessPoolExecutor`` (``jobs=1`` runs inline, bit-identical to the
pool path since every run is fully determined by its :class:`RunSpec`).

Execution is round-based: each round submits every outstanding cell,
collects successes and failures, then retries failed cells in the next
round after an exponential backoff — up to ``RetryPolicy.max_attempts``
tries per cell.  A worker killed mid-run (SIGKILL, OOM) breaks the pool;
every cell that was in flight surfaces as a ``crash`` failure and the
next round gets a fresh pool, so one poisoned cell exhausts its own
attempts without sinking the sweep.  Cells that run out of attempts are
recorded with ``status="failed"`` and excluded from aggregation;
``strict=True`` restores fail-fast (first failure raises
:class:`SweepError`, no retries).
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.sweep.aggregate import aggregate_records
from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.sweep.grid import RunSpec, expand_grid, shard_specs
from repro.sweep.retry import (
    KIND_CRASH,
    RetryPolicy,
    SweepError,
    classify_error,
    error_summary,
    run_deadline,
)


def execute_spec(payload: dict) -> dict:
    """Run one sweep cell — the worker-process entry point.

    Takes the plain-dict payload of a :class:`RunSpec` (name + kwargs
    only, so it pickles trivially), plus an optional ``timeout_s`` the
    worker enforces on itself, and returns a serialized run record.
    """
    from repro.eval import registry
    from repro.eval.results import result_type_name, serialize_result

    spec = registry.get(payload["experiment"])
    params = {key: value for key, value in payload["params"]}
    call_params = dict(params)
    seed = payload.get("seed")
    if seed is not None:
        if spec.accepts_seed:
            call_params["seed"] = seed
        else:
            warnings.warn(
                f"experiment {payload['experiment']!r} takes no seed "
                f"parameter; derived seed {seed} ignored (run is "
                f"deterministic)", RuntimeWarning, stacklevel=2)
    started = time.perf_counter()
    with run_deadline(payload.get("timeout_s")):
        result = spec.run(**call_params)
    elapsed = time.perf_counter() - started
    return {
        "experiment": payload["experiment"],
        "seed_index": payload["seed_index"],
        "seed": payload["seed"],
        "params": params,
        "elapsed_s": elapsed,
        "status": "ok",
        "result_type": result_type_name(result),
        "result": serialize_result(result),
    }


def failed_record(spec: RunSpec, error: BaseException,
                  attempts: int) -> dict:
    """The run record for a cell whose every attempt failed."""
    return {
        "experiment": spec.experiment,
        "seed_index": spec.seed_index,
        "seed": spec.seed,
        "params": dict(spec.params),
        "elapsed_s": 0.0,
        "status": "failed",
        "attempts": attempts,
        "error": error_summary(error),
        "result_type": "",
        "result": None,
    }


@dataclass
class SweepResult:
    """Everything one sweep produced, pre-aggregation included."""

    experiment: str
    root_seed: int
    seeds: int
    jobs: int
    params: Dict[str, object]
    grid: Dict[str, List[object]]
    specs: List[RunSpec]
    records: List[dict]  # same order as specs
    aggregate: Dict[str, Dict[str, float]]
    cache_hits: int
    cache_misses: int
    cache_dir: Optional[str]
    code_version: str
    elapsed_s: float = 0.0
    shard: Optional[Tuple[int, int]] = None  # (index, count) or None
    n_total: int = 0  # full unsharded run count
    artifact_paths: Dict[str, str] = field(default_factory=dict)

    @property
    def n_runs(self) -> int:
        return len(self.records)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.records if r.get("status") == "failed")

    def manifest(self) -> dict:
        return {
            "schema": "repro.sweep/v2",
            "experiment": self.experiment,
            "root_seed": self.root_seed,
            "seeds": self.seeds,
            "jobs": self.jobs,
            "params": dict(self.params),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "n_runs": self.n_runs,
            "n_failed": self.n_failed,
            "n_total": self.n_total or self.n_runs,
            "shard": ({"index": self.shard[0], "count": self.shard[1]}
                      if self.shard else None),
            "code_version": self.code_version,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses,
                      "dir": self.cache_dir},
            "elapsed_s": self.elapsed_s,
            "runs": self.records,
            "aggregate": self.aggregate,
        }

    def summary_lines(self) -> List[str]:
        shard = (f" [shard {self.shard[0]}/{self.shard[1]} of "
                 f"{self.n_total or self.n_runs} runs]" if self.shard
                 else "")
        lines = [
            f"sweep {self.experiment}: {self.n_runs} runs "
            f"({self.seeds} seeds x "
            f"{max(1, (self.n_total or self.n_runs) // max(1, self.seeds))} "
            f"grid points), jobs={self.jobs}{shard}",
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses "
            f"({self.cache_dir or 'disabled'})",
            f"elapsed: {self.elapsed_s:.2f} s",
        ]
        if self.n_failed:
            lines.append(f"FAILED runs: {self.n_failed}/{self.n_runs} "
                         f"(see sweep.json run errors)")
        for path in sorted(self.artifact_paths.values()):
            lines.append(f"wrote {path}")
        return lines


def _execute_pending(
    specs: Sequence[RunSpec],
    pending: Sequence[int],
    *,
    jobs: int,
    policy: RetryPolicy,
    strict: bool,
    cache: ResultCache,
    progress: Optional[Callable[[str], None]],
) -> Dict[int, dict]:
    """Round-based execution with retry: cell index -> final record."""
    results: Dict[int, dict] = {}
    attempts: Dict[int, int] = {index: 0 for index in pending}
    queue: List[int] = list(pending)
    total = len(pending)
    completed = 0
    retry_round = 0
    isolate = False  # after a crash round: one single-worker pool per cell

    def payload_for(index: int) -> dict:
        payload = specs[index].payload()
        if policy.timeout_s is not None:
            payload["timeout_s"] = policy.timeout_s
        return payload

    while queue:
        if retry_round:
            delay = policy.backoff_delay(retry_round)
            if delay:
                time.sleep(delay)
        failures: Dict[int, BaseException] = {}
        fresh: Dict[int, dict] = {}
        if jobs <= 1:
            # Inline: no worker to crash, but also no crash isolation —
            # a cell that kills its process kills the sweep (jobs>=2
            # exists precisely to contain that).
            for index in queue:
                attempts[index] += 1
                try:
                    fresh[index] = execute_spec(payload_for(index))
                except Exception as error:
                    failures[index] = error
        elif isolate:
            # A worker crash breaks its whole pool, failing every cell
            # in flight with it.  Rerun each suspect in its own
            # single-worker pool so a poisoned cell exhausts only its
            # own attempts and collateral cells complete normally.
            for index in queue:
                attempts[index] += 1
                with ProcessPoolExecutor(max_workers=1) as pool:
                    try:
                        fresh[index] = pool.submit(
                            execute_spec, payload_for(index)).result()
                    except Exception as error:
                        failures[index] = error
        else:
            # One pool per round: a crash poisons the pool, so
            # surviving cells get a clean pool on the retry round.
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(queue))) as pool:
                futures = {}
                for index in queue:
                    attempts[index] += 1
                    futures[pool.submit(execute_spec,
                                        payload_for(index))] = index
                for future in as_completed(futures):
                    index = futures[future]
                    try:
                        fresh[index] = future.result()
                    except Exception as error:
                        failures[index] = error
        isolate = any(classify_error(error) == KIND_CRASH
                      for error in failures.values())

        for index in sorted(fresh):
            record = fresh[index]
            record["attempts"] = attempts[index]
            cache.store(specs[index], record)
            results[index] = record
            completed += 1
            if progress is not None:
                progress(
                    f"run {completed}/{total}: seed_index="
                    f"{specs[index].seed_index} seed={specs[index].seed} "
                    f"({record['elapsed_s']:.2f} s)")

        retry_queue: List[int] = []
        for index in sorted(failures):
            error = failures[index]
            spec = specs[index]
            if strict:
                raise SweepError(
                    f"run seed_index={spec.seed_index} "
                    f"seed={spec.seed} of {spec.experiment!r} failed "
                    f"({error_summary(error)['kind']}): {error}"
                ) from error
            if policy.allows_retry(attempts[index]):
                retry_queue.append(index)
                if progress is not None:
                    progress(
                        f"retrying seed_index={spec.seed_index} "
                        f"seed={spec.seed} (attempt "
                        f"{attempts[index]}/{policy.max_attempts} "
                        f"{error_summary(error)['kind']}: {error})")
            else:
                results[index] = failed_record(spec, error,
                                               attempts[index])
                completed += 1
                if progress is not None:
                    progress(
                        f"run {completed}/{total}: seed_index="
                        f"{spec.seed_index} seed={spec.seed} FAILED "
                        f"after {attempts[index]} attempt(s) "
                        f"({error_summary(error)['kind']}: {error})")
        queue = retry_queue
        retry_round += 1
    return results


def run_sweep(
    experiment: str,
    *,
    seeds: int = 8,
    jobs: int = 1,
    params: Optional[Mapping[str, object]] = None,
    grid: Optional[Mapping[str, Sequence[object]]] = None,
    root_seed: int = 0,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    cache_dir: str = DEFAULT_CACHE_DIR,
    cache_max_bytes: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
    retry: Optional[RetryPolicy] = None,
    strict: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Run ``experiment`` across (grid x seeds), cached and in parallel."""
    from repro.eval import registry

    spec_entry = registry.get(experiment)  # raises KeyError when unknown
    policy = retry if retry is not None else RetryPolicy()
    params = dict(params or {})
    grid = {key: list(values) for key, values in (grid or {}).items()}
    overlap = set(params) & set(grid)
    if overlap:
        raise ValueError(
            f"parameter(s) {', '.join(sorted(overlap))} appear in both "
            f"--param and --grid")
    if "seed" in params or "seed" in grid:
        raise ValueError("control seeds via --seeds/--root-seed, "
                         "not --param/--grid seed=...")
    # Coerce and validate against the ParamSpec table up front: a typo'd
    # name, type or choice fails here, not minutes later in a worker.
    params = spec_entry.coerce_params(params)
    grid = {key: [spec_entry.param_spec(key).coerce(value,
                                                    experiment=experiment)
                  for value in values]
            for key, values in grid.items()}

    n_seeds = seeds if spec_entry.accepts_seed else 1
    if not spec_entry.accepts_seed and seeds > 1 and progress is not None:
        progress(f"note: {experiment} takes no seed parameter; "
                 f"running 1 deterministic run per grid point")
    all_specs = expand_grid(experiment, params, grid, n_seeds, root_seed,
                            accepts_seed=spec_entry.accepts_seed)
    n_total = len(all_specs)
    specs = (shard_specs(all_specs, *shard) if shard is not None
             else all_specs)
    if shard is not None and progress is not None:
        progress(f"shard {shard[0]}/{shard[1]}: {len(specs)} of "
                 f"{n_total} runs")

    if cache is None:
        cache = ResultCache(cache_dir, enabled=use_cache,
                            max_bytes=cache_max_bytes)
    started = time.perf_counter()
    records: List[Optional[dict]] = [None] * len(specs)
    pending: List[int] = []
    hits = 0
    for index, spec in enumerate(specs):
        cached = cache.load(spec)
        if cached is not None:
            record = dict(cached)
            record["cached"] = True
            records[index] = record
            hits += 1
        else:
            pending.append(index)
    if progress is not None and hits:
        progress(f"cache: {hits}/{len(specs)} runs already computed")

    if pending:
        executed = _execute_pending(specs, pending, jobs=jobs,
                                    policy=policy, strict=strict,
                                    cache=cache, progress=progress)
        for index in pending:
            record = dict(executed[index])
            record["cached"] = False
            records[index] = record

    aggregate = aggregate_records(
        [record["result"] for record in records
         if record.get("status", "ok") == "ok"])
    return SweepResult(
        experiment=experiment,
        root_seed=root_seed,
        seeds=n_seeds,
        jobs=jobs,
        params=params,
        grid=grid,
        specs=specs,
        records=records,  # type: ignore[arg-type]
        aggregate=aggregate,
        cache_hits=hits,
        cache_misses=len(pending),
        cache_dir=cache.root if cache.enabled else None,
        code_version=cache.version,
        elapsed_s=time.perf_counter() - started,
        shard=shard,
        n_total=n_total,
    )
