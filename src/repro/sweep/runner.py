"""Sweep orchestration: configuration, the classic path, shard dispatch.

:func:`run_sweep` expands a (grid x seeds) run list from a
:class:`SweepConfig`, answers what it can from the on-disk cache, and
executes the rest.  Without an executor that happens in this process on
a ``ProcessPoolExecutor`` (the *classic* path; ``jobs=1`` runs inline,
bit-identical to the pool path since every run is fully determined by
its :class:`RunSpec`), honoring ``config.shard`` so one process can run
a single ``--shard i/n`` slice.

With an ``executor`` (see :mod:`repro.sweep.executors`) the sweep is
instead *dispatched*: split into ``executor.n_shards`` deterministic
slices, each submitted as a shard, supervised until every shard reports
``ok`` — a ``lost`` shard (killed process, dead host, stale heartbeat)
is re-dispatched under :class:`~repro.sweep.retry.ShardRetryPolicy`,
reusing cached cells from the lost attempt — and finally auto-merged
through the validated merge path, so the returned
:class:`SweepResult`'s ``aggregate.csv`` is bit-identical to an
undispatched run.  The merged manifest (schema ``repro.sweep/v4``)
records per-shard status/attempts/host under ``dispatch`` and
wall-domain observability data under ``telemetry``.

Cell-level fault tolerance (retry with backoff, per-run timeouts,
worker-crash isolation, ``strict`` fail-fast) is unchanged from the
process-pool engine, which now lives in
:mod:`repro.sweep.executors.local`.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.sweep.aggregate import aggregate_records
from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.sweep.executors.base import (
    SHARD_FAILED,
    SHARD_LOST,
    SHARD_OK,
    Executor,
    ShardSpec,
)
from repro.sweep.executors.local import _run_cells
from repro.sweep.grid import RunSpec, expand_grid, shard_specs
from repro.sweep.retry import RetryPolicy, ShardRetryPolicy, SweepError
from repro.obs.telemetry import build_telemetry

#: Manifest schema written by this version; the merge path still reads
#: v2 and v3.  v4 adds the wall-domain ``telemetry`` section.
MANIFEST_SCHEMA = "repro.sweep/v4"

Progress = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class SweepConfig:
    """Everything that defines one sweep, minus the experiment name.

    Replaces the former ``run_sweep`` keyword pile; old keywords are
    still accepted for one release through a ``DeprecationWarning``
    shim.  ``shard`` marks this process as one ``i/n`` slice (the
    shard-worker role); ``shard_retry``/``shard_dir`` only matter when
    an executor dispatches the sweep (``shard_dir`` is where per-shard
    artifact directories and heartbeats live — default: a temporary
    directory removed after the merge).
    """

    seeds: int = 8
    jobs: int = 1
    params: Optional[Mapping[str, object]] = None
    grid: Optional[Mapping[str, Sequence[object]]] = None
    root_seed: int = 0
    cache: Optional[ResultCache] = None
    use_cache: bool = True
    cache_dir: str = DEFAULT_CACHE_DIR
    cache_max_bytes: Optional[int] = None
    shard: Optional[Tuple[int, int]] = None
    retry: Optional[RetryPolicy] = None
    strict: bool = False
    shard_retry: Optional[ShardRetryPolicy] = None
    shard_dir: Optional[str] = None
    #: Directory for per-run JSONL trace files (None disables tracing).
    #: Workers enable the global recorder around each run; tracing never
    #: changes results, only observes them.
    trace_dir: Optional[str] = None



@dataclass
class SweepResult:
    """Everything one sweep produced, pre-aggregation included."""

    experiment: str
    root_seed: int
    seeds: int
    jobs: int
    params: Dict[str, object]
    grid: Dict[str, List[object]]
    specs: List[RunSpec]
    records: List[dict]  # same order as specs
    aggregate: Dict[str, Dict[str, float]]
    cache_hits: int
    cache_misses: int
    cache_dir: Optional[str]
    code_version: str
    elapsed_s: float = 0.0
    shard: Optional[Tuple[int, int]] = None  # (index, count) or None
    n_total: int = 0  # full unsharded run count
    artifact_paths: Dict[str, str] = field(default_factory=dict)
    #: Shard-dispatch record (executor name + per-shard status rows),
    #: populated only for executor-dispatched sweeps.  Schema v3.
    dispatch: Optional[dict] = None
    #: Wall-domain telemetry section (schema ``repro.obs.telemetry/v1``),
    #: new in manifest v4.
    telemetry: Optional[dict] = None

    @property
    def n_runs(self) -> int:
        return len(self.records)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.records if r.get("status") == "failed")

    def manifest(self) -> dict:
        return {
            "schema": MANIFEST_SCHEMA,
            "experiment": self.experiment,
            "root_seed": self.root_seed,
            "seeds": self.seeds,
            "jobs": self.jobs,
            "params": dict(self.params),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "n_runs": self.n_runs,
            "n_failed": self.n_failed,
            "n_total": self.n_total or self.n_runs,
            "shard": ({"index": self.shard[0], "count": self.shard[1]}
                      if self.shard else None),
            "code_version": self.code_version,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses,
                      "dir": self.cache_dir},
            "elapsed_s": self.elapsed_s,
            "dispatch": self.dispatch,
            "telemetry": self.telemetry,
            "runs": self.records,
            "aggregate": self.aggregate,
        }

    def summary_lines(self) -> List[str]:
        shard = (f" [shard {self.shard[0]}/{self.shard[1]} of "
                 f"{self.n_total or self.n_runs} runs]" if self.shard
                 else "")
        lines = [
            f"sweep {self.experiment}: {self.n_runs} runs "
            f"({self.seeds} seeds x "
            f"{max(1, (self.n_total or self.n_runs) // max(1, self.seeds))} "
            f"grid points), jobs={self.jobs}{shard}",
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses "
            f"({self.cache_dir or 'disabled'})",
            f"elapsed: {self.elapsed_s:.2f} s",
        ]
        if self.dispatch:
            statuses = [row["status"] for row in self.dispatch["shards"]]
            redispatched = sum(1 for row in self.dispatch["shards"]
                               if row["attempts"] > 1)
            line = (f"dispatched {len(statuses)} shard(s) via "
                    f"{self.dispatch['executor']}: "
                    f"{statuses.count('ok')} ok")
            if redispatched:
                line += f", {redispatched} re-dispatched"
            lines.append(line)
        if self.n_failed:
            lines.append(f"FAILED runs: {self.n_failed}/{self.n_runs} "
                         f"(see sweep.json run errors)")
        for path in sorted(self.artifact_paths.values()):
            lines.append(f"wrote {path}")
        return lines


def _validated_inputs(experiment: str, config: SweepConfig, *,
                      progress: Progress):
    """Registry lookup + param/grid coercion + grid expansion."""
    from repro.eval import registry

    spec_entry = registry.get(experiment)  # raises KeyError when unknown
    params = dict(config.params or {})
    grid = {key: list(values) for key, values in (config.grid or {}).items()}
    overlap = set(params) & set(grid)
    if overlap:
        raise ValueError(
            f"parameter(s) {', '.join(sorted(overlap))} appear in both "
            f"--param and --grid")
    if "seed" in params or "seed" in grid:
        raise ValueError("control seeds via --seeds/--root-seed, "
                         "not --param/--grid seed=...")
    # Coerce and validate against the ParamSpec table up front: a typo'd
    # name, type or choice fails here, not minutes later in a worker.
    params = spec_entry.coerce_params(params)
    grid = {key: [spec_entry.param_spec(key).coerce(value,
                                                    experiment=experiment)
                  for value in values]
            for key, values in grid.items()}

    n_seeds = config.seeds if spec_entry.accepts_seed else 1
    if not spec_entry.accepts_seed and config.seeds > 1 \
            and progress is not None:
        progress(f"note: {experiment} takes no seed parameter; "
                 f"running 1 deterministic run per grid point")
    all_specs = expand_grid(experiment, params, grid, n_seeds,
                            config.root_seed,
                            accepts_seed=spec_entry.accepts_seed)
    return params, grid, n_seeds, all_specs


def run_sweep(
    experiment: str,
    config: Optional[SweepConfig] = None,
    *,
    executor: Optional[Executor] = None,
    progress: Progress = None,
) -> SweepResult:
    """Run ``experiment`` across (grid x seeds), cached and in parallel.

    Settings travel exclusively in a :class:`SweepConfig` (the keyword
    shim that once accepted ``run_sweep(name, seeds=...)`` has been
    removed).  With ``executor=None`` the sweep runs in this process;
    otherwise it is dispatched as shards through the executor and
    auto-merged (see module docstring).
    """
    if config is None:
        config = SweepConfig()
    if executor is not None:
        if config.shard is not None:
            raise ValueError(
                "config.shard marks this process as one shard of a "
                "dispatched sweep; it cannot be combined with an "
                "executor (use the executor's shard count instead)")
        return _run_dispatched(experiment, config, executor, progress)

    params, grid, n_seeds, all_specs = _validated_inputs(
        experiment, config, progress=progress)
    policy = config.retry if config.retry is not None else RetryPolicy()
    n_total = len(all_specs)
    shard = config.shard
    specs = (shard_specs(all_specs, *shard) if shard is not None
             else all_specs)
    if shard is not None and progress is not None:
        progress(f"shard {shard[0]}/{shard[1]}: {len(specs)} of "
                 f"{n_total} runs")

    cache = config.cache
    if cache is None:
        cache = ResultCache(config.cache_dir, enabled=config.use_cache,
                            max_bytes=config.cache_max_bytes)
    started = time.perf_counter()
    records: List[Optional[dict]] = [None] * len(specs)
    pending: List[int] = []
    hits = 0
    for index, spec in enumerate(specs):
        cached = cache.load(spec)
        if cached is not None:
            record = dict(cached)
            record["cached"] = True
            records[index] = record
            hits += 1
        else:
            pending.append(index)
    if progress is not None and hits:
        progress(f"cache: {hits}/{len(specs)} runs already computed")

    if pending:
        executed = _run_cells(specs, pending, jobs=config.jobs,
                              policy=policy, strict=config.strict,
                              cache=cache, progress=progress,
                              trace_dir=config.trace_dir)
        for index in pending:
            record = dict(executed[index])
            record["cached"] = False
            records[index] = record

    aggregate = aggregate_records(
        [record["result"] for record in records
         if record.get("status", "ok") == "ok"])
    elapsed = time.perf_counter() - started
    telemetry = build_telemetry(
        wall_s=elapsed,
        records=[record for record in records if record is not None],
        jobs=config.jobs,
        cache_stats={"hits": hits, "misses": len(pending),
                     "stores": cache.stats["stores"],
                     "evictions": cache.stats["evictions"]},
    )
    return SweepResult(
        experiment=experiment,
        root_seed=config.root_seed,
        seeds=n_seeds,
        jobs=config.jobs,
        params=params,
        grid=grid,
        specs=specs,
        records=records,  # type: ignore[arg-type]
        aggregate=aggregate,
        cache_hits=hits,
        cache_misses=len(pending),
        cache_dir=cache.root if cache.enabled else None,
        code_version=cache.version,
        elapsed_s=elapsed,
        shard=shard,
        n_total=n_total,
        telemetry=telemetry,
    )


# ---------------------------------------------------------------------------
# Dispatched execution: shards through an Executor, merged at the end
# ---------------------------------------------------------------------------

def _run_dispatched(experiment: str, config: SweepConfig,
                    executor: Executor, progress: Progress) -> SweepResult:
    """Split the sweep into shards, supervise them, merge the artifacts."""
    from repro.sweep.merge import merge_sweep_dirs

    # Validate everything up front so a typo fails here, not inside a
    # child process on another host; children re-coerce identically.
    params, grid, _n_seeds, all_specs = _validated_inputs(
        experiment, config, progress=progress)
    count = executor.n_shards
    policy = (config.shard_retry if config.shard_retry is not None
              else ShardRetryPolicy())
    started = time.perf_counter()

    workdir = config.shard_dir
    cleanup = workdir is None
    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-sweep-dispatch-")
    os.makedirs(workdir, exist_ok=True)

    # Children re-derive their slice from the same coordinates, so the
    # child config is shard-free and must not inherit process-local
    # state (a live cache object, dispatch settings).
    child_config = replace(config, params=params, grid=grid, shard=None,
                           cache=None, shard_retry=None, shard_dir=None)
    shard_list = [
        ShardSpec(
            experiment=experiment,
            config=child_config,
            index=index,
            count=count,
            out_dir=os.path.join(workdir, f"shard-{index}"),
            heartbeat=(os.path.join(workdir, f"shard-{index}.heartbeat")
                       if executor.wants_heartbeat else None),
        )
        for index in range(count)
    ]
    if progress is not None:
        progress(f"dispatching {len(all_specs)} runs as {count} shard(s) "
                 f"via {executor.name}")

    handles = {}
    submit_started = time.perf_counter()
    try:
        for spec in shard_list:
            handles[spec.index] = executor.submit(spec)
        submit_s = time.perf_counter() - submit_started
        preflight_failures = dict(
            getattr(executor, "preflight_failures", None) or {})
        if preflight_failures and progress is not None:
            for host in sorted(preflight_failures):
                progress(f"host {host} dropped by preflight: "
                         f"{preflight_failures[host]}")
        while True:
            executor.poll()
            busy = False
            for index in sorted(handles):
                handle = handles[index]
                if handle.status == SHARD_OK:
                    continue
                if handle.status == SHARD_LOST:
                    if not policy.allows_retry(handle.attempts):
                        raise SweepError(
                            f"shard {index}/{count} lost after "
                            f"{handle.attempts} dispatch attempt(s) "
                            f"(last host {handle.host}): {handle.error}")
                    if progress is not None:
                        progress(
                            f"shard {index}/{count} lost on "
                            f"{handle.host} ({handle.error}); "
                            f"re-dispatching (attempt "
                            f"{handle.attempts + 1}/{policy.max_attempts})")
                    handles[index] = executor.resubmit(handle)
                    busy = True
                elif handle.status == SHARD_FAILED:
                    raise SweepError(
                        f"shard {index}/{count} failed on {handle.host}: "
                        f"{handle.error}")
                else:
                    busy = True
            if not busy:
                break
            time.sleep(policy.poll_interval_s)
    except BaseException:
        executor.cancel()
        raise
    finally:
        if cleanup and any(
                handles.get(i) is None or handles[i].status != SHARD_OK
                for i in range(count)):
            shutil.rmtree(workdir, ignore_errors=True)

    collect_started = time.perf_counter()
    merged = merge_sweep_dirs(executor.collect())
    collect_s = time.perf_counter() - collect_started
    merged.jobs = config.jobs
    merged.elapsed_s = time.perf_counter() - started  # wall clock
    merged.dispatch = {
        "executor": executor.name,
        "n_shards": count,
        "shards": [handles[index].describe() for index in sorted(handles)],
    }
    if preflight_failures:
        merged.dispatch["preflight_failures"] = preflight_failures
    if merged.telemetry is not None:
        # Shard telemetry was merged from the surviving attempts'
        # manifests (a lost attempt left no manifest, so its partial
        # telemetry is naturally discarded); add the dispatch-level
        # wall measurements only the driver can see.
        merged.telemetry["dispatch"] = {
            "executor": executor.name,
            "n_shards": count,
            "wall_s": merged.elapsed_s,
            "submit_s": submit_s,
            "collect_s": collect_s,
            "shards": [handles[index].describe()
                       for index in sorted(handles)],
        }
    if progress is not None:
        for index in sorted(handles):
            handle = handles[index]
            progress(f"shard {index}/{count}: {handle.status} on "
                     f"{handle.host} after {handle.attempts} attempt(s)")
    if cleanup:
        shutil.rmtree(workdir, ignore_errors=True)
    return merged
