"""Fault-tolerance policy for sweep cells: timeouts, retries, backoff.

A sweep cell can fail three ways — the experiment raises, the run
exceeds its per-run timeout, or the worker process dies outright
(SIGKILL, OOM).  :class:`RetryPolicy` says how many attempts each cell
gets and how long to back off between retry rounds; the runner consults
it and, when attempts are exhausted, marks the cell ``failed`` instead
of sinking the whole sweep.  All delays are deterministic (pure
exponential, no jitter) so sweep behavior is reproducible in tests.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass

#: Error kinds recorded on a failed cell.
KIND_EXCEPTION = "exception"  # the experiment function raised
KIND_TIMEOUT = "timeout"      # the per-run timeout expired
KIND_CRASH = "crash"          # the worker process died (SIGKILL/OOM)
KIND_LOST = "lost"            # a dispatched shard's process/host died


class RunTimeoutError(Exception):
    """A sweep cell exceeded its per-run timeout."""


class SweepError(RuntimeError):
    """The sweep as a whole must abort: a cell failed under
    ``strict=True``, or a dispatched shard failed deterministically /
    ran out of dispatch attempts."""


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the runner tries before giving up on one cell.

    ``max_attempts`` counts every try, including the first (so 1 means
    no retries).  Between retry rounds the runner sleeps
    ``backoff_s * backoff_factor ** (round - 1)`` seconds, capped at
    ``max_backoff_s``.  ``timeout_s=None`` disables the per-run timeout.
    """

    max_attempts: int = 3
    timeout_s: float = None  # type: ignore[assignment]
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.backoff_s < 0 or self.backoff_factor < 1:
            raise ValueError("backoff_s must be >= 0 and "
                             "backoff_factor >= 1")

    def backoff_delay(self, retry_round: int) -> float:
        """Seconds to sleep before retry round ``retry_round`` (1-based)."""
        if retry_round < 1:
            return 0.0
        delay = self.backoff_s * self.backoff_factor ** (retry_round - 1)
        return min(delay, self.max_backoff_s)

    def allows_retry(self, attempts_used: int) -> bool:
        return attempts_used < self.max_attempts


NO_RETRY = RetryPolicy(max_attempts=1)


@dataclass(frozen=True)
class ShardRetryPolicy:
    """How the dispatch driver supervises *shards* (not cells).

    A shard is one ``--shard i/n`` slice dispatched through an
    :class:`~repro.sweep.executors.base.Executor`.  When a shard is
    ``lost`` — its process killed, its host unreachable, its heartbeat
    stale — the driver re-dispatches it (on another host where the
    executor has one) up to ``max_attempts`` total dispatches; cells the
    lost attempt already finished are answered from the result cache on
    the retry.  A shard that *fails* (nonzero exit from a config error
    or ``--strict``) is never re-dispatched: retrying a deterministic
    failure elsewhere cannot help.  ``poll_interval_s`` paces the
    driver's supervision loop.
    """

    max_attempts: int = 2
    poll_interval_s: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    def allows_retry(self, attempts_used: int) -> bool:
        return attempts_used < self.max_attempts


def classify_error(error: BaseException) -> str:
    """Map an exception from a cell to one of the error kinds."""
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(error, RunTimeoutError):
        return KIND_TIMEOUT
    if isinstance(error, BrokenProcessPool):
        return KIND_CRASH
    return KIND_EXCEPTION


def error_summary(error: BaseException) -> dict:
    """A JSON-safe description of a cell failure for the run record."""
    return {
        "kind": classify_error(error),
        "type": type(error).__name__,
        "message": str(error),
    }


@contextmanager
def run_deadline(timeout_s):
    """Raise :class:`RunTimeoutError` if the body runs past ``timeout_s``.

    Implemented with ``SIGALRM``, which interrupts even CPU-bound pure
    Python — exactly the shape of a wedged simulation run.  On platforms
    without ``SIGALRM`` (or off the main thread) this is a no-op; the
    runner still completes, just without timeout enforcement there.
    """
    usable = (
        timeout_s is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(signum, frame):
        raise RunTimeoutError(f"run exceeded timeout of {timeout_s} s")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
