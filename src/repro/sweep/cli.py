"""The ``python -m repro sweep`` and ``python -m repro merge`` subcommands."""

from __future__ import annotations

import argparse
import os
import time
from typing import List, Optional

from repro.sweep.artifacts import write_sweep_artifacts
from repro.sweep.cache import DEFAULT_CACHE_DIR
from repro.sweep.executors.base import Executor
from repro.sweep.grid import (
    parse_grid_assignments,
    parse_param_assignments,
    parse_shard,
)
from repro.sweep.retry import RetryPolicy, ShardRetryPolicy, SweepError
from repro.sweep.runner import SweepConfig, run_sweep


def add_sweep_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "sweep",
        help="Monte-Carlo sweep an experiment across seeds and parameters",
        description=(
            "Fan one experiment across N derived seeds (and an optional "
            "parameter grid) on a process pool, aggregate "
            "mean/median/std/CI statistics, and write JSON/CSV artifacts. "
            "Finished runs are cached under .repro-cache/ and reused "
            "until code or parameters change.  Failed or timed-out runs "
            "are retried with exponential backoff, then marked failed; "
            "--shard i/n runs one deterministic slice of the sweep for "
            "later `repro merge`, and --executor dispatches all shards "
            "(child processes or ssh hosts) and auto-merges them."),
    )
    parser.add_argument("experiment", help="registered experiment name")
    parser.add_argument("--seeds", type=int, default=8, metavar="N",
                        help="Monte-Carlo replicates per grid point "
                             "(default 8)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, os.cpu_count() or 1), metavar="J",
                        help="worker processes (default: CPU count)")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="fix an experiment parameter (repeatable; "
                             "dotted keys like adversary.rate address "
                             "nested spec fields)")
    parser.add_argument("--grid", action="append", default=[],
                        metavar="KEY=V1,V2,...",
                        help="sweep an experiment parameter over values "
                             "(repeatable; cartesian product; dotted "
                             "keys like placement.strategy address "
                             "nested spec fields)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="artifact directory "
                             "(default sweeps/<experiment>)")
    parser.add_argument("--root-seed", type=int, default=0, metavar="S",
                        help="root seed all per-run seeds derive from "
                             "(default 0)")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="run only shard I of N (deterministic "
                             "partition of the run list; merge shard "
                             "outputs with `repro merge`)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-run timeout in seconds "
                             "(default: no timeout)")
    parser.add_argument("--retries", type=int, default=2, metavar="R",
                        help="retries per failed run before marking it "
                             "failed (default 2)")
    parser.add_argument("--retry-backoff", type=float, default=0.5,
                        metavar="S",
                        help="base backoff between retry rounds, doubled "
                             "each round (default 0.5 s)")
    parser.add_argument("--strict", action="store_true",
                        help="fail fast: first failed run aborts the "
                             "sweep instead of being retried/recorded")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"result cache location "
                             f"(default {DEFAULT_CACHE_DIR})")
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        metavar="MB",
                        help="cap the cache at MB megabytes, evicting "
                             "least-recently-used entries (default: "
                             "unbounded)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every run; do not read or write "
                             "the cache")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")

    obs = parser.add_argument_group(
        "observability",
        "record per-run traces and profile the sweep (see README, "
        "'Observability')")
    obs.add_argument("--trace", action="store_true",
                     help="record a JSONL trace per executed run under "
                          "<out>/traces (sim-domain events + metrics; "
                          "results are byte-identical with or without)")
    obs.add_argument("--profile", action="store_true",
                     help="wrap the sweep in cProfile and write top-N "
                          "cumulative stats to <out>/profile.json")

    dispatch = parser.add_argument_group(
        "shard dispatch",
        "split the sweep into shards, run them through an executor, and "
        "auto-merge the results (see EXPERIMENTS.md, 'Distributed "
        "sweeps')")
    dispatch.add_argument("--executor", default=None,
                          choices=("local", "subprocess", "ssh"),
                          help="dispatch shards in-process (local), as "
                               "supervised child processes (subprocess), "
                               "or across hosts (ssh)")
    dispatch.add_argument("--shards", type=int, default=None, metavar="N",
                          help="shard count (default: 1 for local, 2 for "
                               "subprocess, total host slots for ssh)")
    dispatch.add_argument("--hosts", default=None, metavar="H1,H2:SLOTS",
                          help="ssh hosts as name or name:slots, "
                               "comma-separated")
    dispatch.add_argument("--hostfile", default=None, metavar="PATH",
                          help="TOML hostfile (see EXPERIMENTS.md for the "
                               "format); overrides --hosts")
    dispatch.add_argument("--transport", default="ssh",
                          choices=("ssh", "local"),
                          help="how ssh shards reach their hosts: real "
                               "ssh/scp, or local subprocesses (smoke "
                               "tests; host names become labels)")
    dispatch.add_argument("--shard-attempts", type=int, default=2,
                          metavar="N",
                          help="dispatch attempts per shard before the "
                               "sweep fails; lost shards are re-run, on "
                               "another host when there is one "
                               "(default 2)")
    dispatch.add_argument("--shard-timeout", type=float, default=None,
                          metavar="S",
                          help="kill a shard running longer than S "
                               "seconds and mark it lost")
    dispatch.add_argument("--heartbeat-timeout", type=float, default=None,
                          metavar="S",
                          help="subprocess executor: kill a shard whose "
                               "heartbeat file is older than S seconds")
    # Internal: executors pass --heartbeat to their shard children; the
    # child touches the file twice a second for liveness supervision.
    dispatch.add_argument("--heartbeat", default=None,
                          help=argparse.SUPPRESS)
    return parser


def add_merge_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "merge",
        help="merge sharded sweep outputs into one aggregate",
        description=(
            "Union the sweep.json manifests of several --shard runs of "
            "the same sweep (validating that shards are disjoint and "
            "share identical sweep coordinates) and write merged "
            "artifacts identical to an unsharded run."),
    )
    parser.add_argument("dirs", nargs="+", metavar="DIR",
                        help="sweep output directories (each holding a "
                             "sweep.json)")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="directory for the merged artifacts")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-shard summary lines")
    return parser


def _start_heartbeat(path: str) -> None:
    """Touch ``path`` twice a second from a daemon thread, forever."""
    import threading

    def beat() -> None:
        while True:
            try:
                with open(path, "a"):
                    pass
                os.utime(path)
            except OSError:
                pass
            time.sleep(0.5)

    threading.Thread(target=beat, daemon=True,
                     name="sweep-heartbeat").start()


def _build_executor(args: argparse.Namespace) -> Optional[Executor]:
    """Construct the requested dispatch backend, or None for --shard/plain."""
    if args.executor is None:
        for flag, name in ((args.hosts, "--hosts"),
                           (args.hostfile, "--hostfile"),
                           (args.shards, "--shards")):
            if flag is not None:
                raise ValueError(f"{name} needs --executor")
        return None
    if args.shard is not None:
        raise ValueError(
            "--shard marks this process as one shard of a dispatched "
            "sweep; it cannot be combined with --executor")
    from repro.sweep.executors import (
        LocalCommandTransport,
        LocalPoolExecutor,
        SSHExecutor,
        SubprocessShardExecutor,
        load_hostfile,
        parse_hosts,
    )

    if args.executor == "local":
        return LocalPoolExecutor(shards=args.shards or 1)
    if args.executor == "subprocess":
        return SubprocessShardExecutor(
            shards=args.shards or 2,
            heartbeat_timeout_s=args.heartbeat_timeout,
            shard_timeout_s=args.shard_timeout)
    if args.hostfile:
        hosts = load_hostfile(args.hostfile)
    elif args.hosts:
        hosts = parse_hosts(args.hosts)
    else:
        raise ValueError("--executor ssh needs --hosts or --hostfile")
    transport = (LocalCommandTransport() if args.transport == "local"
                 else None)
    return SSHExecutor(hosts, transport=transport, shards=args.shards,
                       shard_timeout_s=args.shard_timeout)


def cmd_sweep(args: argparse.Namespace) -> int:
    import sys

    try:
        params = parse_param_assignments(args.param)
        grid = parse_grid_assignments(args.grid)
        shard = parse_shard(args.shard) if args.shard else None
        retry = RetryPolicy(max_attempts=max(1, args.retries + 1),
                            timeout_s=args.timeout,
                            backoff_s=args.retry_backoff)
        executor = _build_executor(args)
        shard_retry = ShardRetryPolicy(
            max_attempts=max(1, args.shard_attempts))
    except (OSError, ValueError) as error:
        print(error, file=sys.stderr)
        return 2
    if args.heartbeat:
        _start_heartbeat(args.heartbeat)
    progress = None if args.quiet else (lambda line: print(line, flush=True))
    cache_max_bytes = (int(args.cache_max_mb * 1024 * 1024)
                       if args.cache_max_mb is not None else None)
    out_dir = args.out or os.path.join("sweeps", args.experiment)
    config = SweepConfig(
        seeds=args.seeds,
        jobs=args.jobs,
        params=params,
        grid=grid,
        root_seed=args.root_seed,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        cache_max_bytes=cache_max_bytes,
        shard=shard,
        retry=retry,
        strict=args.strict,
        shard_retry=shard_retry,
        # Keep per-shard artifacts next to the merged ones for debugging.
        shard_dir=(os.path.join(out_dir, "shards")
                   if executor is not None else None),
        trace_dir=(os.path.join(out_dir, "traces") if args.trace
                   else None),
    )
    try:
        if args.profile:
            from repro.obs.profile import (format_profile_lines,
                                           profile_call, write_profile)

            sweep, profile_stats = profile_call(
                run_sweep, args.experiment, config, executor=executor,
                progress=progress)
        else:
            sweep = run_sweep(args.experiment, config, executor=executor,
                              progress=progress)
    except SweepError as error:
        print(f"sweep aborted: {error}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(message, file=sys.stderr)
        return 2
    sweep.artifact_paths = write_sweep_artifacts(sweep, out_dir)
    if args.profile:
        profile_path = write_profile(
            profile_stats, os.path.join(out_dir, "profile.json"))
        sweep.artifact_paths["profile"] = profile_path
        if not args.quiet:
            for line in format_profile_lines(profile_stats):
                print(line)
        print(f"wrote {profile_path}")
    for line in sweep.summary_lines():
        print(line)
    headline = _headline_fields(sweep.aggregate)
    if headline:
        print("aggregate (mean ± ci95 over runs):")
        for line in headline:
            print("  " + line)
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    import sys

    from repro.sweep.merge import (
        MergeError,
        load_manifest,
        merge_manifests,
        shard_summary,
    )

    try:
        manifests = [load_manifest(d) for d in args.dirs]
        if not args.quiet:
            for line in shard_summary(manifests):
                print(line, flush=True)
        merged = merge_manifests(manifests)
    except MergeError as error:
        print(f"merge failed: {error}", file=sys.stderr)
        return 2
    merged.artifact_paths = write_sweep_artifacts(merged, args.out)
    for line in merged.summary_lines():
        print(line)
    return 0


def _headline_fields(aggregate) -> List[str]:
    """The most readable aggregate slice: top-level and metrics.* fields."""
    lines = []
    for field, stats in aggregate.items():
        segments = field.split(".")
        if len(segments) > 2 or segments[-1].isdigit():
            continue
        lines.append(f"{field}: {stats['mean']:.4g} ± {stats['ci95']:.4g} "
                     f"(median {stats['median']:.4g}, n={stats['n']})")
    return lines
