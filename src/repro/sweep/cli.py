"""The ``python -m repro sweep`` and ``python -m repro merge`` subcommands."""

from __future__ import annotations

import argparse
import os
from typing import List

from repro.sweep.artifacts import write_sweep_artifacts
from repro.sweep.cache import DEFAULT_CACHE_DIR
from repro.sweep.grid import (
    parse_grid_assignments,
    parse_param_assignments,
    parse_shard,
)
from repro.sweep.retry import RetryPolicy, SweepError
from repro.sweep.runner import run_sweep


def add_sweep_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "sweep",
        help="Monte-Carlo sweep an experiment across seeds and parameters",
        description=(
            "Fan one experiment across N derived seeds (and an optional "
            "parameter grid) on a process pool, aggregate "
            "mean/median/std/CI statistics, and write JSON/CSV artifacts. "
            "Finished runs are cached under .repro-cache/ and reused "
            "until code or parameters change.  Failed or timed-out runs "
            "are retried with exponential backoff, then marked failed; "
            "--shard i/n runs one deterministic slice of the sweep for "
            "later `repro merge`."),
    )
    parser.add_argument("experiment", help="registered experiment name")
    parser.add_argument("--seeds", type=int, default=8, metavar="N",
                        help="Monte-Carlo replicates per grid point "
                             "(default 8)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, os.cpu_count() or 1), metavar="J",
                        help="worker processes (default: CPU count)")
    parser.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="fix an experiment parameter (repeatable)")
    parser.add_argument("--grid", action="append", default=[],
                        metavar="KEY=V1,V2,...",
                        help="sweep an experiment parameter over values "
                             "(repeatable; cartesian product)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="artifact directory "
                             "(default sweeps/<experiment>)")
    parser.add_argument("--root-seed", type=int, default=0, metavar="S",
                        help="root seed all per-run seeds derive from "
                             "(default 0)")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="run only shard I of N (deterministic "
                             "partition of the run list; merge shard "
                             "outputs with `repro merge`)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-run timeout in seconds "
                             "(default: no timeout)")
    parser.add_argument("--retries", type=int, default=2, metavar="R",
                        help="retries per failed run before marking it "
                             "failed (default 2)")
    parser.add_argument("--retry-backoff", type=float, default=0.5,
                        metavar="S",
                        help="base backoff between retry rounds, doubled "
                             "each round (default 0.5 s)")
    parser.add_argument("--strict", action="store_true",
                        help="fail fast: first failed run aborts the "
                             "sweep instead of being retried/recorded")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"result cache location "
                             f"(default {DEFAULT_CACHE_DIR})")
    parser.add_argument("--cache-max-mb", type=float, default=None,
                        metavar="MB",
                        help="cap the cache at MB megabytes, evicting "
                             "least-recently-used entries (default: "
                             "unbounded)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every run; do not read or write "
                             "the cache")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-run progress lines")
    return parser


def add_merge_parser(sub: argparse._SubParsersAction) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "merge",
        help="merge sharded sweep outputs into one aggregate",
        description=(
            "Union the sweep.json manifests of several --shard runs of "
            "the same sweep (validating that shards are disjoint and "
            "share identical sweep coordinates) and write merged "
            "artifacts identical to an unsharded run."),
    )
    parser.add_argument("dirs", nargs="+", metavar="DIR",
                        help="sweep output directories (each holding a "
                             "sweep.json)")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="directory for the merged artifacts")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-shard summary lines")
    return parser


def cmd_sweep(args: argparse.Namespace) -> int:
    import sys

    try:
        params = parse_param_assignments(args.param)
        grid = parse_grid_assignments(args.grid)
        shard = parse_shard(args.shard) if args.shard else None
        retry = RetryPolicy(max_attempts=max(1, args.retries + 1),
                            timeout_s=args.timeout,
                            backoff_s=args.retry_backoff)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    progress = None if args.quiet else (lambda line: print(line, flush=True))
    cache_max_bytes = (int(args.cache_max_mb * 1024 * 1024)
                       if args.cache_max_mb is not None else None)
    try:
        sweep = run_sweep(
            args.experiment,
            seeds=args.seeds,
            jobs=args.jobs,
            params=params,
            grid=grid,
            root_seed=args.root_seed,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            cache_max_bytes=cache_max_bytes,
            shard=shard,
            retry=retry,
            strict=args.strict,
            progress=progress,
        )
    except SweepError as error:
        print(f"sweep aborted (--strict): {error}", file=sys.stderr)
        return 1
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(message, file=sys.stderr)
        return 2
    out_dir = args.out or os.path.join("sweeps", args.experiment)
    sweep.artifact_paths = write_sweep_artifacts(sweep, out_dir)
    for line in sweep.summary_lines():
        print(line)
    headline = _headline_fields(sweep.aggregate)
    if headline:
        print("aggregate (mean ± ci95 over runs):")
        for line in headline:
            print("  " + line)
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    import sys

    from repro.sweep.merge import (
        MergeError,
        load_manifest,
        merge_manifests,
        shard_summary,
    )

    try:
        manifests = [load_manifest(d) for d in args.dirs]
        if not args.quiet:
            for line in shard_summary(manifests):
                print(line, flush=True)
        merged = merge_manifests(manifests)
    except MergeError as error:
        print(f"merge failed: {error}", file=sys.stderr)
        return 2
    merged.artifact_paths = write_sweep_artifacts(merged, args.out)
    for line in merged.summary_lines():
        print(line)
    return 0


def _headline_fields(aggregate) -> List[str]:
    """The most readable aggregate slice: top-level and metrics.* fields."""
    lines = []
    for field, stats in aggregate.items():
        segments = field.split(".")
        if len(segments) > 2 or segments[-1].isdigit():
            continue
        lines.append(f"{field}: {stats['mean']:.4g} ± {stats['ci95']:.4g} "
                     f"(median {stats['median']:.4g}, n={stats['n']})")
    return lines
