"""Link-state routing with suspicion-driven path-segment exclusion.

Two modes are provided:

* :func:`install_static_routes` — compute shortest paths straight from the
  topology and install forwarding tables.  Used by experiments that are
  not about control-plane dynamics.
* :class:`LinkStateRouting` — an OSPF-flavoured daemon per router: hello
  adjacency bring-up, LSA flooding, SPF scheduling with *delay* and *hold*
  timers (the two Zebra parameters called out in §5.3.2), and alert
  flooding.  This reproduces the Fig 5.7 timeline: initial convergence,
  detection, and rerouting one spf-delay + hold later.

**Response semantics** (§2.4.3, §5.3.1): a suspicion names a path-segment
⟨r1..rm⟩.  A 2-segment excludes the link; a longer segment forbids any
path that traverses those routers *consecutively in that order*.  Because
hop-by-hop tables keyed only on destination cannot express "don't follow
a→b→c", the paper uses policy routing keyed on source; we reproduce that
by computing per-(src, dst) paths under the forbidden-window constraint
and installing per-pair policy entries along each path.
"""

from __future__ import annotations

import heapq
import itertools
import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.net.router import Network
from repro.net.topology import Topology

PathSegment = Tuple[str, ...]


class ForwardingTable(dict):
    """dst -> list of next hops.  A thin dict subclass for clarity."""


# -- cached single-source SPF ----------------------------------------------
#
# Unconstrained shortest paths dominate route installation:
# ``compute_all_paths`` used to run one Dijkstra per ordered (src, dst)
# pair — O(n²) searches — and every LSA change made ``LinkStateRouting``
# re-derive a router's whole table one destination at a time.  A single
# source's Dijkstra already finalizes the identical path to *every*
# destination (the per-pair variant merely stops early), so we run it
# once per source and cache the tree, keyed on ``Topology.version`` so
# any structural change invalidates it.  Suspicion-constrained searches
# (forbidden windows) stay on the uncached per-pair path: their state
# space depends on the suspicion set and they are rare by construction.

_SpfKey = Tuple[str, Optional[FrozenSet[Tuple[str, str]]]]
_spf_cache: "weakref.WeakKeyDictionary[Topology, Tuple[int, Dict[_SpfKey, Dict[str, List[str]]]]]" = (
    weakref.WeakKeyDictionary()
)


def _single_source_spf(
    topology: Topology,
    src: str,
    link_up: Optional[Set[Tuple[str, str]]] = None,
) -> Dict[str, List[str]]:
    """Paths from ``src`` to every reachable router, no constraints.

    Byte-compatible with :func:`shortest_path_avoiding` called per
    destination: the same (window-)state space, neighbor order and
    insertion-order tie-break, minus the early exit — a popped final
    state's prev-chain is already finalized, so recording the first pop
    per destination reproduces the per-pair result exactly.
    """
    start_state = (src,)
    dist: Dict[Tuple[str, ...], float] = {start_state: 0.0}
    prev: Dict[Tuple[str, ...], Tuple[str, ...]] = {}
    counter = itertools.count()
    heap: List[Tuple[float, int, Tuple[str, ...]]] = [(0.0, next(counter), start_state)]
    finals: Dict[str, Tuple[str, ...]] = {}

    while heap:
        d, _, state = heapq.heappop(heap)
        if d > dist.get(state, float("inf")):
            continue
        here = state[-1]
        if here not in finals:
            finals[here] = state
        for nbr in topology.neighbors(here):
            if link_up is not None and (here, nbr) not in link_up:
                continue
            if nbr in state:
                continue
            new_state = (state + (nbr,))[-2:]
            cost = d + topology.link(here, nbr).metric
            if cost < dist.get(new_state, float("inf")):
                dist[new_state] = cost
                prev[new_state] = state
                heapq.heappush(heap, (cost, next(counter), new_state))

    paths: Dict[str, List[str]] = {}
    for dst, final in finals.items():
        path_rev = [final[-1]]
        state = final
        while state in prev:
            parent = prev[state]
            path_rev.append(parent[-1])
            state = parent
        path = list(reversed(path_rev))
        if path[0] != src:
            path.insert(0, src)
        cleaned = [path[0]]
        for hop in path[1:]:
            if hop != cleaned[-1]:
                cleaned.append(hop)
        paths[dst] = cleaned
    return paths


def spf_paths(
    topology: Topology,
    src: str,
    link_up: Optional[Set[Tuple[str, str]]] = None,
) -> Dict[str, List[str]]:
    """Cached unconstrained shortest paths from ``src``.

    The cache lives per :class:`Topology` instance (weakly referenced)
    and is dropped wholesale when ``topology.version`` changes.  Returned
    lists are fresh copies — callers may mutate them freely.
    """
    tree = _cached_tree(topology, src, link_up)
    return {dst: list(path) for dst, path in tree.items()}


def _cached_tree(
    topology: Topology,
    src: str,
    link_up: Optional[Set[Tuple[str, str]]],
) -> Dict[str, List[str]]:
    key: _SpfKey = (src, None if link_up is None else frozenset(link_up))
    cached = _spf_cache.get(topology)
    if cached is None or cached[0] != topology.version:
        cached = (topology.version, {})
        _spf_cache[topology] = cached
    trees = cached[1]
    tree = trees.get(key)
    if tree is None:
        tree = _single_source_spf(topology, src, link_up)
        trees[key] = tree
    return tree


def _forbidden_windows(
    suspicions: Iterable[PathSegment],
) -> Tuple[Set[Tuple[str, str]], Tuple[PathSegment, ...]]:
    """Split suspicions into excluded links and forbidden windows (len>=3).

    ``bad_links`` is only ever membership-tested, so a set is fine;
    ``windows`` is *iterated* on the Dijkstra hot path, so it comes back
    as a sorted tuple — set iteration order is PYTHONHASHSEED-salted and
    must never reach path computation.
    """
    bad_links: Set[Tuple[str, str]] = set()
    window_set: Set[PathSegment] = set()
    for seg in suspicions:
        seg = tuple(seg)
        if len(seg) < 2:
            continue
        if len(seg) == 2:
            bad_links.add((seg[0], seg[1]))
        else:
            window_set.add(seg)
    return bad_links, tuple(sorted(window_set))


def shortest_path_avoiding(
    topology: Topology,
    src: str,
    dst: str,
    suspicions: Iterable[PathSegment] = (),
    link_up: Optional[Set[Tuple[str, str]]] = None,
) -> Optional[List[str]]:
    """Dijkstra over (window) states so forbidden segments are never taken.

    ``link_up``, when given, restricts usable links (the daemon passes its
    LSDB view).  Returns the router sequence or None if unreachable.
    """
    bad_links, windows = _forbidden_windows(suspicions)
    if not bad_links and not windows:
        # Unconstrained query: serve from the cached per-source SPF tree
        # (identical result, shared across every destination).
        path = _cached_tree(topology, src, link_up).get(dst)
        return None if path is None else list(path)
    max_window = max((len(w) for w in windows), default=2)
    wsize = max(1, max_window - 1)  # how many trailing routers to remember

    def blocked(window: Tuple[str, ...]) -> bool:
        # window is the path suffix including the new router
        for w in windows:
            if len(window) >= len(w) and window[-len(w):] == w:
                return True
        return False

    start_state = (src,)
    dist: Dict[Tuple[str, ...], float] = {start_state: 0.0}
    prev: Dict[Tuple[str, ...], Tuple[str, ...]] = {}
    counter = itertools.count()
    heap: List[Tuple[float, int, Tuple[str, ...]]] = [(0.0, next(counter), start_state)]
    best_final: Optional[Tuple[str, ...]] = None

    while heap:
        d, _, state = heapq.heappop(heap)
        if d > dist.get(state, float("inf")):
            continue
        here = state[-1]
        if here == dst:
            best_final = state
            break
        for nbr in topology.neighbors(here):
            if (here, nbr) in bad_links:
                continue
            if link_up is not None and (here, nbr) not in link_up:
                continue
            if nbr in state:  # no loops within remembered window; also cheap cycle guard
                continue
            new_window = (state + (nbr,))[-(wsize + 1):]
            if blocked(state + (nbr,)):
                continue
            cost = d + topology.link(here, nbr).metric
            new_state = new_window
            # Keep full path via prev-chain; state key is the window.
            key = new_state
            if cost < dist.get(key, float("inf")):
                dist[key] = cost
                prev[key] = state
                heapq.heappush(heap, (cost, next(counter), key))

    if best_final is None:
        return None
    # Reconstruct path by walking prev chain of window states.
    path_rev = [best_final[-1]]
    state = best_final
    while state in prev:
        parent = prev[state]
        path_rev.append(parent[-1])
        state = parent
    path = list(reversed(path_rev))
    if path[0] != src:
        path.insert(0, src)
    # Deduplicate accidental repeats from window-state reconstruction.
    cleaned = [path[0]]
    for hop in path[1:]:
        if hop != cleaned[-1]:
            cleaned.append(hop)
    return cleaned


def compute_all_paths(
    topology: Topology,
    suspicions: Iterable[PathSegment] = (),
    link_up: Optional[Set[Tuple[str, str]]] = None,
) -> Dict[Tuple[str, str], List[str]]:
    """Shortest path for every ordered router pair, under constraints."""
    paths: Dict[Tuple[str, str], List[str]] = {}
    routers = topology.routers
    suspicions = list(suspicions)
    for src in routers:
        for dst in routers:
            if src == dst:
                continue
            path = shortest_path_avoiding(topology, src, dst, suspicions, link_up)
            if path is not None:
                paths[(src, dst)] = path
    return paths


def install_static_routes(
    network: Network,
    suspicions: Iterable[PathSegment] = (),
) -> Dict[Tuple[str, str], List[str]]:
    """Compute and install routes; returns the path map used.

    Destination-keyed tables are installed from the unconstrained shortest
    paths; when suspicions exist, per-(src, dst) policy entries are added
    along every constrained path (the paper's policy-based routing).
    """
    suspicions = list(suspicions)
    topo = network.topology
    base_paths = compute_all_paths(topo)
    for (src, dst), path in base_paths.items():
        if path[0] == src and len(path) > 1:
            network.routers[src].forwarding_table.setdefault(dst, [])
    # Plain dst-keyed tables from unconstrained SPF:
    for (src, dst), path in base_paths.items():
        network.routers[src].forwarding_table[dst] = [path[1]]
    paths = base_paths
    if suspicions:
        paths = compute_all_paths(topo, suspicions)
        for router in network.routers.values():
            router.policy_table = {}
        for (src, dst), path in paths.items():
            for i, hop in enumerate(path[:-1]):
                network.routers[hop].policy_table[(src, dst)] = [path[i + 1]]
    return paths


@dataclass
class LSA:
    """A link-state advertisement: who I am, my live links, my sequence."""

    origin: str
    seq: int
    links: Tuple[str, ...]  # neighbor names with an up adjacency


@dataclass
class Alert:
    """A flooded suspicion announcement (signed by origin in the model)."""

    origin: str
    segment: PathSegment
    interval: Tuple[float, float]
    alert_id: int = 0


class LinkStateRouting:
    """Network-wide OSPF-flavoured control plane with Fatih response hooks."""

    def __init__(
        self,
        network: Network,
        spf_delay: float = 5.0,
        spf_hold: float = 10.0,
        hello_interval: float = 10.0,
        hellos_for_adjacency: int = 2,
        boot_spread: float = 30.0,
        flood_hop_delay: float = 0.05,
        lsa_refresh: float = 15.0,
        dead_interval: Optional[float] = None,
    ) -> None:
        self.network = network
        self.spf_delay = spf_delay
        self.spf_hold = spf_hold
        self.hello_interval = hello_interval
        self.hellos_for_adjacency = hellos_for_adjacency
        self.boot_spread = boot_spread
        self.flood_hop_delay = flood_hop_delay
        self.lsa_refresh = lsa_refresh
        # OSPF router-dead interval: adjacency drops after this long
        # without a hello (default: 4 hello intervals, as in OSPF).
        self.dead_interval = (dead_interval if dead_interval is not None
                              else 4.0 * hello_interval)
        sim = network.sim
        names = network.topology.routers
        self._alert_ids = itertools.count(1)
        self.state: Dict[str, _DaemonState] = {
            name: _DaemonState(name) for name in names
        }
        self.converged_at: Dict[str, float] = {}
        self.suspicion_log: List[Tuple[float, Alert]] = []
        self.spf_runs: List[Tuple[float, str]] = []

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Boot every daemon at a deterministic, spread-out time."""
        names = self.network.topology.routers
        for i, name in enumerate(names):
            boot = (i / max(1, len(names) - 1)) * self.boot_spread if len(names) > 1 else 0.0
            self.network.sim.schedule_at(boot, self._boot, name)

    def _boot(self, name: str) -> None:
        st = self.state[name]
        st.booted = True
        self._send_hellos(name)
        self.network.sim.schedule(self.lsa_refresh, self._refresh_lsa, name)

    def _refresh_lsa(self, name: str) -> None:
        """Periodic re-origination so late-booting routers catch up
        (standing in for OSPF's database exchange + LSA refresh)."""
        st = self.state[name]
        if st.adjacencies:
            self._originate_lsa(name)
        self.network.sim.schedule(self.lsa_refresh, self._refresh_lsa, name)

    def _send_hellos(self, name: str) -> None:
        st = self.state[name]
        if not st.booted:
            return
        for nbr in self.network.routers[name].neighbors():
            if not self.network.topology.link(name, nbr).up:
                continue  # the wire is dead; hellos die with it
            self.network.sim.schedule(
                self.flood_hop_delay, self._recv_hello, nbr, name
            )
        self._check_dead_neighbors(name)
        self.network.sim.schedule(self.hello_interval, self._send_hellos, name)

    def _check_dead_neighbors(self, name: str) -> None:
        """Drop adjacencies whose hellos stopped (router-dead interval)."""
        st = self.state[name]
        now = self.network.sim.now
        dead = [nbr for nbr in st.adjacencies
                if now - st.last_hello.get(nbr, now) > self.dead_interval]
        if not dead:
            return
        for nbr in dead:
            st.adjacencies.discard(nbr)
            st.hello_counts[nbr] = 0
        self._originate_lsa(name)

    def _recv_hello(self, at: str, from_nbr: str) -> None:
        st = self.state[at]
        if not st.booted:
            return
        if not self.network.topology.link(from_nbr, at).up:
            return  # in-flight hello on a link that just died
        st.last_hello[from_nbr] = self.network.sim.now
        st.hello_counts[from_nbr] = st.hello_counts.get(from_nbr, 0) + 1
        if (st.hello_counts[from_nbr] >= self.hellos_for_adjacency
                and from_nbr not in st.adjacencies):
            st.adjacencies.add(from_nbr)
            self._originate_lsa(at)

    def _originate_lsa(self, name: str) -> None:
        st = self.state[name]
        st.lsa_seq += 1
        lsa = LSA(origin=name, seq=st.lsa_seq,
                  links=tuple(sorted(st.adjacencies)))
        self._install_lsa(name, lsa)
        self._flood(name, lsa, exclude=None)

    def _flood(self, at: str, item, exclude: Optional[str]) -> None:
        for nbr in self.network.routers[at].neighbors():
            if nbr == exclude:
                continue
            if not self.network.topology.link(at, nbr).up:
                continue
            self.network.sim.schedule(
                self.flood_hop_delay, self._recv_flood, nbr, at, item
            )

    def _recv_flood(self, at: str, from_nbr: str, item) -> None:
        st = self.state[at]
        if not st.booted:
            return
        if isinstance(item, LSA):
            known = st.lsdb.get(item.origin)
            if known is not None and known.seq >= item.seq:
                return
            self._install_lsa(at, item)
            self._flood(at, item, exclude=from_nbr)
        elif isinstance(item, Alert):
            if item.alert_id in st.seen_alerts:
                return
            st.seen_alerts.add(item.alert_id)
            self._accept_alert(at, item)
            self._flood(at, item, exclude=from_nbr)

    def _install_lsa(self, at: str, lsa: LSA) -> None:
        st = self.state[at]
        known = st.lsdb.get(lsa.origin)
        st.lsdb[lsa.origin] = lsa
        if known is None or known.links != lsa.links:
            self._schedule_spf(at)

    def _accept_alert(self, at: str, alert: Alert) -> None:
        st = self.state[at]
        st.suspicions.add(tuple(alert.segment))
        self.suspicion_log.append((self.network.sim.now, alert))
        self._schedule_spf(at)

    # -- SPF scheduling (delay + hold timers, §5.3.2) ------------------------
    def _schedule_spf(self, name: str) -> None:
        st = self.state[name]
        if st.spf_pending:
            return
        now = self.network.sim.now
        earliest = max(now + self.spf_delay, st.last_spf + self.spf_hold)
        st.spf_pending = True
        self.network.sim.schedule_at(earliest, self._run_spf, name)

    def _run_spf(self, name: str) -> None:
        st = self.state[name]
        st.spf_pending = False
        st.last_spf = self.network.sim.now
        self.spf_runs.append((self.network.sim.now, name))
        link_up = self._links_up(st)
        topo = self.network.topology
        router = self.network.routers[name]
        # dst-keyed table from this router's LSDB view.
        table: Dict[str, List[str]] = {}
        policy: Dict[Tuple[str, str], List[str]] = {}
        for dst in topo.routers:
            if dst == name:
                continue
            path = shortest_path_avoiding(topo, name, dst, (), link_up)
            if path is not None and len(path) > 1:
                table[dst] = [path[1]]
        if st.suspicions:
            # Per-(src, dst) policy entries for transit traffic through us.
            for src in topo.routers:
                for dst in topo.routers:
                    if src == dst:
                        continue
                    path = shortest_path_avoiding(
                        topo, src, dst, st.suspicions, link_up
                    )
                    if path is None or name not in path[:-1]:
                        continue
                    idx = path.index(name)
                    policy[(src, dst)] = [path[idx + 1]]
        router.forwarding_table = table
        router.policy_table = policy
        if table and name not in self.converged_at:
            if len(table) == len(topo.routers) - 1:
                self.converged_at[name] = self.network.sim.now

    def _links_up(self, st: "_DaemonState") -> Set[Tuple[str, str]]:
        up: Set[Tuple[str, str]] = set()
        for origin, lsa in st.lsdb.items():
            for nbr in lsa.links:
                up.add((origin, nbr))
        # A link is usable only if both directions are advertised.
        return {(a, b) for (a, b) in up if (b, a) in up}

    # -- public API ----------------------------------------------------------
    def announce_suspicion(self, origin: str, segment: PathSegment,
                           interval: Tuple[float, float]) -> None:
        """Called by a detector at ``origin``: flood an alert network-wide."""
        alert = Alert(origin=origin, segment=tuple(segment),
                      interval=interval, alert_id=next(self._alert_ids))
        st = self.state[origin]
        st.seen_alerts.add(alert.alert_id)
        self._accept_alert(origin, alert)
        self._flood(origin, alert, exclude=None)

    def all_converged(self) -> bool:
        return len(self.converged_at) == len(self.network.routers)

    def convergence_time(self) -> Optional[float]:
        if not self.all_converged():
            return None
        return max(self.converged_at.values())


class _DaemonState:
    def __init__(self, name: str) -> None:
        self.name = name
        self.booted = False
        self.hello_counts: Dict[str, int] = {}
        self.last_hello: Dict[str, float] = {}
        self.adjacencies: Set[str] = set()
        self.lsa_seq = 0
        self.lsdb: Dict[str, LSA] = {}
        self.suspicions: Set[PathSegment] = set()
        self.seen_alerts: Set[int] = set()
        self.spf_pending = False
        self.last_spf = float("-inf")
