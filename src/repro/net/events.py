"""Discrete-event simulation engine.

A single-threaded event heap drives the whole network: link transmissions,
propagation delays, application sends, protocol rounds and timers are all
events.  Time is modelled in float seconds.

The engine is deliberately minimal: callers schedule callbacks at absolute
or relative times and the :meth:`Simulator.run` loop dispatches them in
timestamp order.  Ties are broken by insertion order so runs are fully
deterministic for a fixed seed.

Hot-path notes: the heap stores flat ``(time, seq, event)`` tuples so
``heapq`` compares plain floats/ints instead of calling a rich-comparison
method per sift step, and :class:`Event` is a ``__slots__`` class — both
measurably matter at millions of events per run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Tuple

from repro.obs import recorder


class Event:
    """A scheduled callback.

    Events order by ``(time, seq)`` so that simultaneous events fire in
    the order they were scheduled.  (Inside :class:`Simulator` that key
    lives in the heap entry itself; the comparison operators here keep
    the historical dataclass ``order=True`` contract for external code.)
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None],
                 args: tuple = (), cancelled: bool = False) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so the dispatcher skips it."""
        self.cancelled = True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __le__(self, other: "Event") -> bool:
        return (self.time, self.seq) <= (other.time, other.seq)

    def __gt__(self, other: "Event") -> bool:
        return (self.time, self.seq) > (other.time, other.seq)

    def __ge__(self, other: "Event") -> bool:
        return (self.time, self.seq) >= (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{flag})"


#: One heap entry: ``(time, seq, event)``.
_HeapEntry = Tuple[float, int, Event]


class Simulator:
    """Event heap with a simulation clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    #: Process-wide cumulative dispatch count across every Simulator
    #: instance.  ``repro.bench`` reads the delta around a workload run
    #: to get events/sec without instrumenting (or slowing) the loop.
    dispatched_total: int = 0

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._seq = 0
        self.now: float = 0.0
        self._running = False
        #: Cumulative count of events dispatched by this simulator across
        #: all :meth:`run` calls — the denominator of every events/sec
        #: benchmark (see :mod:`repro.bench`).
        self.events_dispatched: int = 0

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        # Inlined schedule_at: one call frame per event matters at ~3
        # schedules per packet (delay >= 0 makes the past-check moot).
        when = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, fn, args)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(when, seq, fn, args)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next pending event, or None."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events in order.

        Stops when the heap is empty, when the next event is later than
        ``until``, or after ``max_events`` dispatches.  Returns the number
        of events dispatched.  When stopped by ``until``, the clock is
        advanced to ``until`` even if no event fired exactly there.
        """
        dispatched = 0
        heap = self._heap
        heappop = heapq.heappop
        self._running = True
        try:
            while heap:
                if max_events is not None and dispatched >= max_events:
                    break
                when, _seq, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    continue
                if until is not None and when > until:
                    break
                heappop(heap)
                self.now = when
                event.fn(*event.args)
                dispatched += 1
        finally:
            self._running = False
            self.events_dispatched += dispatched
            Simulator.dispatched_total += dispatched
        if until is not None and until > self.now:
            self.now = until
        rec = recorder()
        if rec.active:
            rec.metrics.counter("repro.net.sim.runs").inc()
            rec.metrics.counter("repro.net.sim.events").inc(dispatched)
            rec.metrics.gauge("repro.net.sim.horizon").set(self.now)
        return dispatched

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)
