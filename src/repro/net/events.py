"""Discrete-event simulation engine.

A single-threaded event heap drives the whole network: link transmissions,
propagation delays, application sends, protocol rounds and timers are all
events.  Time is modelled in float seconds.

The engine is deliberately minimal: callers schedule callbacks at absolute
or relative times and the :meth:`Simulator.run` loop dispatches them in
timestamp order.  Ties are broken by insertion order so runs are fully
deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.record import recorder


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that simultaneous events fire in
    the order they were scheduled.
    """

    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the dispatcher skips it."""
        self.cancelled = True


class Simulator:
    """Event heap with a simulation clock.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self._running = False

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``when``."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule at {when} before current time {self.now}"
            )
        event = Event(when, next(self._counter), fn, args)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next pending event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Dispatch events in order.

        Stops when the heap is empty, when the next event is later than
        ``until``, or after ``max_events`` dispatches.  Returns the number
        of events dispatched.  When stopped by ``until``, the clock is
        advanced to ``until`` even if no event fired exactly there.
        """
        dispatched = 0
        self._running = True
        try:
            while self._heap:
                if max_events is not None and dispatched >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self.now = event.time
                event.fn(*event.args)
                dispatched += 1
        finally:
            self._running = False
        if until is not None and until > self.now:
            self.now = until
        rec = recorder()
        if rec.active:
            rec.metrics.counter("repro.net.sim.runs").inc()
            rec.metrics.counter("repro.net.sim.events").inc(dispatched)
            rec.metrics.gauge("repro.net.sim.horizon").set(self.now)
        return dispatched

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
