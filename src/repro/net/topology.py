"""Network topologies.

A :class:`Topology` is a set of named routers connected by directional
point-to-point links (each undirected cable is two directed links, as in
the paper's model, §4.1).  Links carry bandwidth (bytes/second), one-way
propagation delay (seconds) and a routing metric.

Besides hand-built test topologies (chain, diamond) this module provides:

* :func:`abilene` — the public 11-PoP Abilene backbone used by the Fatih
  prototype evaluation (Fig 5.6), with link delays calibrated so that the
  New York <-> Sunnyvale shortest path is 25 ms one-way via Kansas City
  and the post-detection alternative is 28 ms via Houston, matching
  Fig 5.7.
* :func:`sprintlink_like` / :func:`ebone_like` — deterministic synthetic
  stand-ins for the Rocketfuel-measured Sprintlink (315 routers, 972
  links, mean degree 6.17, max 45) and EBONE (87 routers, 161 links, mean
  3.70, max 11) topologies analysed in §5.1.1/§5.2.1, matched on node
  count, link count and degree statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

MBPS = 125_000  # bytes per second in one megabit/second


@dataclass
class Link:
    """A directed point-to-point link."""

    src: str
    dst: str
    bandwidth: float = 100 * MBPS  # bytes/second
    delay: float = 0.001  # seconds, one-way propagation
    metric: float = 1.0  # routing cost
    queue_limit: int = 64_000  # output buffer, bytes
    mtu: Optional[int] = None  # None = no fragmentation on this link
    up: bool = True  # administrative/physical state

    @property
    def ends(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    def transmission_delay(self, size: int) -> float:
        """Serialization time for ``size`` bytes."""
        return size / self.bandwidth


class Topology:
    """Named routers plus directed links between them."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: List[str] = []
        self._node_set: set = set()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adjacency: Dict[str, List[str]] = {}
        #: Monotone structural revision.  Bumped whenever the router/link
        #: structure changes; :mod:`repro.net.routing` keys its SPF caches
        #: on it.  Callers that mutate :class:`Link` fields that feed path
        #: costs (``metric``) in place must call :meth:`bump_version`.
        self.version: int = 0

    def bump_version(self) -> None:
        """Invalidate routing caches after an in-place link mutation."""
        self.version += 1

    # -- construction -----------------------------------------------------
    def add_router(self, name: str) -> None:
        if name in self._node_set:
            return
        self._nodes.append(name)
        self._node_set.add(name)
        self._adjacency[name] = []
        self.version += 1

    def add_link(
        self,
        a: str,
        b: str,
        bandwidth: float = 100 * MBPS,
        delay: float = 0.001,
        metric: Optional[float] = None,
        queue_limit: int = 64_000,
        mtu: Optional[int] = None,
        bidirectional: bool = True,
    ) -> None:
        """Add a link a->b (and b->a unless ``bidirectional`` is False)."""
        if a == b:
            raise ValueError(f"self-link on {a!r}")
        self.add_router(a)
        self.add_router(b)
        if metric is None:
            metric = delay * 1000.0  # default: cost proportional to delay (ms)
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for src, dst in pairs:
            if (src, dst) in self._links:
                raise ValueError(f"duplicate link {src}->{dst}")
            self._links[(src, dst)] = Link(
                src, dst, bandwidth=bandwidth, delay=delay, metric=metric,
                queue_limit=queue_limit, mtu=mtu,
            )
            self._adjacency[src].append(dst)
        self.version += 1

    # -- queries ----------------------------------------------------------
    @property
    def routers(self) -> List[str]:
        return list(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._node_set

    def __len__(self) -> int:
        return len(self._nodes)

    def neighbors(self, name: str) -> List[str]:
        return list(self._adjacency[name])

    def degree(self, name: str) -> int:
        return len(self._adjacency[name])

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[(a, b)]
        except KeyError:
            raise KeyError(f"no link {a}->{b} in {self.name}") from None

    def has_link(self, a: str, b: str) -> bool:
        return (a, b) in self._links

    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    def undirected_link_count(self) -> int:
        seen = set()
        for (a, b) in self._links:
            seen.add(frozenset((a, b)))
        return len(seen)

    def to_networkx(self) -> nx.Graph:
        """Undirected view with metric/delay/bandwidth edge attributes."""
        graph = nx.Graph()
        graph.add_nodes_from(self._nodes)
        for (a, b), link in self._links.items():
            graph.add_edge(
                a, b,
                metric=link.metric, delay=link.delay, bandwidth=link.bandwidth,
            )
        return graph

    def is_connected(self) -> bool:
        if not self._nodes:
            return True
        return nx.is_connected(self.to_networkx())

    def degree_stats(self) -> Tuple[float, int]:
        """(mean degree, max degree) over all routers."""
        degrees = [self.degree(n) for n in self._nodes]
        return (sum(degrees) / len(degrees), max(degrees))


# -- canned topologies -----------------------------------------------------

def chain(n: int, prefix: str = "r", **link_kwargs) -> Topology:
    """A path topology r1 - r2 - ... - rn."""
    if n < 1:
        raise ValueError("chain needs at least one router")
    topo = Topology(name=f"chain-{n}")
    names = [f"{prefix}{i}" for i in range(1, n + 1)]
    for name in names:
        topo.add_router(name)
    for a, b in zip(names, names[1:]):
        topo.add_link(a, b, **link_kwargs)
    return topo


def diamond(**link_kwargs) -> Topology:
    """Source s, sink t, two disjoint 2-hop paths via a and b."""
    topo = Topology(name="diamond")
    for a, b in [("s", "a"), ("a", "t"), ("s", "b"), ("b", "t")]:
        topo.add_link(a, b, **link_kwargs)
    return topo


def ring(n: int, prefix: str = "r", **link_kwargs) -> Topology:
    """A cycle topology r1 - r2 - ... - rn - r1."""
    if n < 3:
        raise ValueError("ring needs at least three routers")
    topo = chain(n, prefix=prefix, **link_kwargs)
    topo.name = f"ring-{n}"
    topo.add_link(f"{prefix}{n}", f"{prefix}1", **link_kwargs)
    return topo


def grid(rows: int, cols: int, prefix: str = "r", **link_kwargs) -> Topology:
    """A rows x cols mesh; router ``r{i}x{j}`` connects to its 4-neighbours."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs at least one row and one column")
    if rows * cols < 2:
        raise ValueError("grid needs at least two routers")
    topo = Topology(name=f"grid-{rows}x{cols}")
    names = [[f"{prefix}{i}x{j}" for j in range(1, cols + 1)]
             for i in range(1, rows + 1)]
    for row in names:
        for name in row:
            topo.add_router(name)
    for i in range(rows):
        for j in range(cols):
            if j + 1 < cols:
                topo.add_link(names[i][j], names[i][j + 1], **link_kwargs)
            if i + 1 < rows:
                topo.add_link(names[i][j], names[i + 1][j], **link_kwargs)
    return topo


ABILENE_POPS = [
    "Seattle", "Sunnyvale", "LosAngeles", "Denver", "KansasCity",
    "Houston", "Indianapolis", "Chicago", "Atlanta", "WashingtonDC",
    "NewYork",
]

# (a, b, one-way delay seconds).  Delays are calibrated so the shortest
# Sunnyvale->NewYork path (via Denver, KansasCity, Indianapolis, Chicago)
# sums to 25 ms and the alternative (via LosAngeles, Houston, Atlanta,
# WashingtonDC) sums to 28 ms, as reported for Fig 5.7.
ABILENE_LINKS = [
    ("Seattle", "Sunnyvale", 0.004),
    ("Seattle", "Denver", 0.006),
    ("Sunnyvale", "LosAngeles", 0.003),
    ("Sunnyvale", "Denver", 0.005),
    ("LosAngeles", "Houston", 0.007),
    ("Denver", "KansasCity", 0.004),
    ("KansasCity", "Houston", 0.005),
    ("KansasCity", "Indianapolis", 0.005),
    ("Houston", "Atlanta", 0.007),
    ("Indianapolis", "Chicago", 0.003),
    ("Indianapolis", "Atlanta", 0.006),
    ("Chicago", "NewYork", 0.008),
    ("Atlanta", "WashingtonDC", 0.005),
    ("WashingtonDC", "NewYork", 0.006),
]


def abilene(
    bandwidth: float = 100 * MBPS, queue_limit: int = 64_000
) -> Topology:
    """The Abilene backbone of Fig 5.6."""
    topo = Topology(name="abilene")
    for pop in ABILENE_POPS:
        topo.add_router(pop)
    for a, b, delay in ABILENE_LINKS:
        topo.add_link(a, b, bandwidth=bandwidth, delay=delay,
                      queue_limit=queue_limit)
    return topo


def _preferential_topology(
    n_nodes: int,
    n_links: int,
    max_degree: int,
    seed: int,
    name: str,
) -> Topology:
    """Connected preferential-attachment graph with exact node/link counts.

    Builds a random spanning tree (guaranteeing connectivity), then adds
    extra links by preferential attachment subject to a degree cap.  The
    result has exactly ``n_nodes`` routers and ``n_links`` undirected
    links, a heavy-tailed degree distribution and a controlled maximum
    degree — the properties that Fig 5.2 / Fig 5.4 depend on.
    """
    if n_links < n_nodes - 1:
        raise ValueError("need at least n_nodes-1 links for connectivity")
    rng = random.Random(seed)
    names = [f"{name}-{i}" for i in range(n_nodes)]
    degree = {v: 0 for v in names}
    edges: set = set()

    # Random spanning tree by preferential attachment of new nodes.
    attached = [names[0]]
    for node in names[1:]:
        weights = [degree[v] + 1 for v in attached]
        target = rng.choices(attached, weights=weights, k=1)[0]
        while degree[target] >= max_degree:
            target = rng.choices(attached, weights=weights, k=1)[0]
        edges.add(frozenset((node, target)))
        degree[node] += 1
        degree[target] += 1
        attached.append(node)

    # Extra links, preferentially, under the degree cap.
    attempts = 0
    while len(edges) < n_links:
        attempts += 1
        if attempts > 200 * n_links:
            raise RuntimeError("degree cap too tight to place all links")
        weights = [degree[v] + 1 for v in names]
        a, b = rng.choices(names, weights=weights, k=2)
        if a == b:
            continue
        if degree[a] >= max_degree or degree[b] >= max_degree:
            continue
        key = frozenset((a, b))
        if key in edges:
            continue
        edges.add(key)
        degree[a] += 1
        degree[b] += 1

    topo = Topology(name=name)
    for v in names:
        topo.add_router(v)
    for key in sorted(edges, key=lambda e: tuple(sorted(e))):
        a, b = sorted(key)
        topo.add_link(a, b)
    return topo


def sprintlink_like(seed: int = 1239) -> Topology:
    """Synthetic topology matched to Rocketfuel Sprintlink (AS1239).

    315 routers / 972 links; the measured network has mean degree 6.17 and
    maximum degree 45 (§5.1.1).
    """
    return _preferential_topology(
        n_nodes=315, n_links=972, max_degree=45, seed=seed, name="sprintlink"
    )


def ebone_like(seed: int = 1755) -> Topology:
    """Synthetic topology matched to Rocketfuel EBONE (AS1755).

    87 routers / 161 links; mean degree 3.70, maximum degree 11 (§5.1.1).
    """
    return _preferential_topology(
        n_nodes=87, n_links=161, max_degree=11, seed=seed, name="ebone"
    )
