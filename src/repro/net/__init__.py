"""Network substrate: discrete-event simulator, routers, queues, routing, traffic.

This package implements the packet-switched network model of Chapter 2/4 of
the paper: routers interconnected by directional point-to-point links, each
router forwarding hop-by-hop from a local forwarding table computed by a
link-state routing protocol.  Output interfaces are buffered by droptail or
RED queues; monitors can tap enqueue/transmit/drop/receive events to build
the traffic summaries that the detection protocols consume.
"""

from repro.net.events import Simulator, Event
from repro.net.packet import Packet, PacketKind
from repro.net.topology import Topology, Link, abilene, chain, diamond
from repro.net.queues import DropTailQueue, REDQueue, QueueEvent
from repro.net.router import ForwardAction, MonitorTap, Network, Router
from repro.net.routing import LinkStateRouting, ForwardingTable
from repro.net.traffic import CBRSource, PoissonSource, OnOffSource
from repro.net.tcp import TCPFlow
from repro.net.adversary import (
    CombinedCompromise,
    Compromise,
    ControlSuppressionAttack,
    DropAllAttack,
    DropFractionAttack,
    DropFlowAttack,
    QueueConditionalDropAttack,
    REDAverageConditionalDropAttack,
    SynDropAttack,
    ModifyAttack,
    ReorderAttack,
    DelayAttack,
    FabricateAttack,
    MisrouteAttack,
)

__all__ = [
    "Simulator",
    "Event",
    "Packet",
    "PacketKind",
    "Topology",
    "Link",
    "abilene",
    "chain",
    "diamond",
    "DropTailQueue",
    "REDQueue",
    "QueueEvent",
    "Router",
    "Network",
    "MonitorTap",
    "ForwardAction",
    "LinkStateRouting",
    "ForwardingTable",
    "CBRSource",
    "PoissonSource",
    "OnOffSource",
    "TCPFlow",
    "Compromise",
    "CombinedCompromise",
    "ControlSuppressionAttack",
    "DropAllAttack",
    "DropFractionAttack",
    "DropFlowAttack",
    "QueueConditionalDropAttack",
    "REDAverageConditionalDropAttack",
    "SynDropAttack",
    "ModifyAttack",
    "ReorderAttack",
    "DelayAttack",
    "FabricateAttack",
    "MisrouteAttack",
]
