"""Network substrate: discrete-event simulator, routers, queues, routing, traffic.

This package implements the packet-switched network model of Chapter 2/4 of
the paper: routers interconnected by directional point-to-point links, each
router forwarding hop-by-hop from a local forwarding table computed by a
link-state routing protocol.  Output interfaces are buffered by droptail or
RED queues; monitors can tap enqueue/transmit/drop/receive events to build
the traffic summaries that the detection protocols consume.

The supported surface is exactly ``__all__``; the submodules behind it
are internal.  Reaching them through the package (``repro.net.events``,
``from repro.net import events``) still works but emits a
:class:`DeprecationWarning` naming the supported import path, and the
``API001`` lint rule flags in-repo imports that bypass the package for
names it already exports.
"""

import importlib as _importlib
import warnings as _warnings

from repro.net.events import Simulator, Event
from repro.net.packet import Packet, PacketKind
from repro.net.topology import (
    MBPS,
    Topology,
    Link,
    abilene,
    chain,
    diamond,
    ebone_like,
    grid,
    ring,
    sprintlink_like,
)
from repro.net.queues import DropTailQueue, REDParams, REDQueue, QueueEvent
from repro.net.router import ForwardAction, MonitorTap, Network, Router
from repro.net.routing import (
    LinkStateRouting,
    ForwardingTable,
    install_static_routes,
)
from repro.net.traffic import CBRSource, PoissonSource, OnOffSource
from repro.net.tcp import TCPFlow
from repro.net.adversary import (
    CombinedCompromise,
    Compromise,
    ControlSuppressionAttack,
    DropAllAttack,
    DropFractionAttack,
    DropFlowAttack,
    QueueConditionalDropAttack,
    REDAverageConditionalDropAttack,
    SynDropAttack,
    ModifyAttack,
    ReorderAttack,
    DelayAttack,
    FabricateAttack,
    MisrouteAttack,
)

__all__ = [
    "Simulator",
    "Event",
    "Packet",
    "PacketKind",
    "MBPS",
    "Topology",
    "Link",
    "abilene",
    "chain",
    "diamond",
    "ebone_like",
    "grid",
    "ring",
    "sprintlink_like",
    "DropTailQueue",
    "REDParams",
    "REDQueue",
    "QueueEvent",
    "install_static_routes",
    "Router",
    "Network",
    "MonitorTap",
    "ForwardAction",
    "LinkStateRouting",
    "ForwardingTable",
    "CBRSource",
    "PoissonSource",
    "OnOffSource",
    "TCPFlow",
    "Compromise",
    "CombinedCompromise",
    "ControlSuppressionAttack",
    "DropAllAttack",
    "DropFractionAttack",
    "DropFlowAttack",
    "QueueConditionalDropAttack",
    "REDAverageConditionalDropAttack",
    "SynDropAttack",
    "ModifyAttack",
    "ReorderAttack",
    "DelayAttack",
    "FabricateAttack",
    "MisrouteAttack",
]

#: Internal implementation modules, deprecated as import targets.
_INTERNAL_MODULES = (
    "adversary",
    "events",
    "packet",
    "queues",
    "router",
    "routing",
    "tcp",
    "topology",
    "traffic",
)

# Drop the submodule bindings the re-exports above created on the
# package, so attribute access routes through __getattr__ (PEP 562)
# and carries a deprecation warning.
for _name in _INTERNAL_MODULES:
    globals().pop(_name, None)
del _name


def __getattr__(name: str):
    if name in _INTERNAL_MODULES:
        _warnings.warn(
            f"repro.net.{name} is an internal module; import the "
            f"supported names from the repro.net package instead "
            f"(see repro.net.__all__)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _importlib.import_module(f"repro.net.{name}")
    raise AttributeError(f"module 'repro.net' has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_INTERNAL_MODULES))
