"""A TCP-Reno-like transport flow.

Chapter 6's evaluation rides on TCP dynamics: AIMD congestion control
drives router queues into overflow, producing the *benign* loss process
that Protocol χ must predict, and TCP's sensitivity to targeted loss
(SYN drops, timeout attacks) is what makes sub-threshold malicious
dropping damaging (§6.1.1).  This implementation covers the mechanisms
those experiments need:

* three-way-handshake SYN with 3 s initial retransmission timeout,
  exponential backoff (the disproportionate-SYN-loss effect);
* slow start / congestion avoidance with an explicit ssthresh;
* duplicate-ACK fast retransmit (3 dupacks) with window halving;
* retransmission timeout with Jacobson/Karels RTT estimation and
  exponential backoff, cwnd reset to 1.

It is not a byte-exact TCP: segments are fixed-size (one MSS), ACKs are
per-segment and cumulative.  That level of fidelity matches what the
paper's figures depend on (loss counts, throughput collapse, connection
establishment latency).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.net.packet import Packet, PacketKind
from repro.net.router import Network

MSS = 1000
ACK_SIZE = 40
SYN_SIZE = 40
INITIAL_SYN_RTO = 3.0
MIN_RTO = 0.2
MAX_RTO = 60.0


class TCPFlow:
    """One unidirectional bulk-transfer TCP connection.

    ``total_packets`` bounds the transfer (None = run until sim ends).
    Statistics are exposed as plain attributes for the experiment harness.
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        flow_id: str,
        total_packets: Optional[int] = None,
        start: float = 0.0,
        mss: int = MSS,
        init_ssthresh: float = 64.0,
        max_cwnd: float = 256.0,
    ) -> None:
        if src == dst:
            raise ValueError("TCP flow endpoints must differ")
        self.network = network
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.total_packets = total_packets
        self.mss = mss

        # -- sender state
        self.cwnd = 1.0
        self.ssthresh = init_ssthresh
        self.max_cwnd = max_cwnd
        self.send_base = 0  # lowest unacked seq
        self.next_seq = 0
        self.dupacks = 0
        self._recover = 0  # NewReno recovery point (highest seq at loss)
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = 1.0
        self._rto_event = None
        self._send_times: Dict[int, float] = {}
        self._retransmitted: Set[int] = set()
        self.established = False
        self.connect_started_at: Optional[float] = None
        self.established_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._syn_rto = INITIAL_SYN_RTO
        self._syn_event = None
        self.syn_retries = 0

        # -- receiver state
        self._recv_next = 0  # next in-order seq expected
        self._out_of_order: Set[int] = set()

        # -- statistics
        self.data_sent = 0  # segments transmitted (incl. retransmits)
        self.retransmits = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.acked = 0  # segments cumulatively acknowledged
        self.delivered = 0  # segments that arrived at the receiver

        network.routers[src].register_flow(flow_id, self._sender_receive)
        network.routers[dst].register_flow(flow_id, self._receiver_receive)
        network.sim.schedule_at(start, self._connect)

    # -- connection establishment -------------------------------------------
    def _connect(self) -> None:
        self.connect_started_at = self.network.sim.now
        self._send_syn()

    def _send_syn(self) -> None:
        if self.established:
            return
        syn = Packet(src=self.src, dst=self.dst, size=SYN_SIZE,
                     kind=PacketKind.SYN, flow_id=self.flow_id, seq=0,
                     payload=b"SYN")
        self.network.routers[self.src].originate(syn)
        self._syn_event = self.network.sim.schedule(
            self._syn_rto, self._syn_timeout
        )

    def _syn_timeout(self) -> None:
        if self.established:
            return
        self.syn_retries += 1
        self._syn_rto = min(self._syn_rto * 2, MAX_RTO)
        self._send_syn()

    # -- receiver side --------------------------------------------------------
    def _receiver_receive(self, packet: Packet, now: float) -> None:
        if packet.kind == PacketKind.SYN:
            synack = Packet(src=self.dst, dst=self.src, size=SYN_SIZE,
                            kind=PacketKind.SYN_ACK, flow_id=self.flow_id,
                            seq=0, payload=b"SYNACK")
            self.network.routers[self.dst].originate(synack)
            return
        if packet.kind != PacketKind.DATA:
            return
        self.delivered += 1
        seq = packet.seq
        if seq == self._recv_next:
            self._recv_next += 1
            while self._recv_next in self._out_of_order:
                self._out_of_order.discard(self._recv_next)
                self._recv_next += 1
        elif seq > self._recv_next:
            self._out_of_order.add(seq)
        ack = Packet(src=self.dst, dst=self.src, size=ACK_SIZE,
                     kind=PacketKind.ACK, flow_id=self.flow_id,
                     seq=self._recv_next, payload=b"ACK")
        self.network.routers[self.dst].originate(ack)

    # -- sender side -----------------------------------------------------------
    def _sender_receive(self, packet: Packet, now: float) -> None:
        if packet.kind == PacketKind.SYN_ACK:
            if not self.established:
                self.established = True
                self.established_at = now
                if self._syn_event is not None:
                    self._syn_event.cancel()
                self._try_send()
            return
        if packet.kind != PacketKind.ACK:
            return
        ackno = packet.seq
        if ackno > self.send_base:
            newly = ackno - self.send_base
            self.acked += newly
            # RTT sample from an unretransmitted, timed segment (Karn).
            sample_seq = ackno - 1
            sent_at = self._send_times.get(sample_seq)
            if sent_at is not None and sample_seq not in self._retransmitted:
                self._update_rtt(now - sent_at)
            for seq in range(self.send_base, ackno):
                self._send_times.pop(seq, None)
            self.send_base = ackno
            self.dupacks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd + newly, self.max_cwnd)  # slow start
            else:
                self.cwnd = min(self.cwnd + newly / self.cwnd, self.max_cwnd)
            if ackno < self._recover and self._flight() > 0:
                # NewReno partial ACK: the next hole is at the new
                # send_base; retransmit it immediately rather than
                # stalling a full (backed-off) RTO per hole.
                self._transmit(self.send_base, retransmission=True)
            self._restart_rto()
            if (self.total_packets is not None
                    and self.send_base >= self.total_packets
                    and self.completed_at is None):
                self.completed_at = now
                if self._rto_event is not None:
                    self._rto_event.cancel()
            self._try_send()
        elif ackno == self.send_base and self._flight() > 0:
            self.dupacks += 1
            if self.dupacks == 3:
                self._fast_retransmit()

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = max(MIN_RTO, min(MAX_RTO, self.srtt + 4 * self.rttvar))

    def _flight(self) -> int:
        return self.next_seq - self.send_base

    def _try_send(self) -> None:
        if not self.established or self.completed_at is not None:
            return
        limit = self.total_packets
        while self._flight() < int(self.cwnd):
            if limit is not None and self.next_seq >= limit:
                break
            self._transmit(self.next_seq)
            self.next_seq += 1
        if self._rto_event is None and self._flight() > 0:
            self._restart_rto()

    def _transmit(self, seq: int, retransmission: bool = False) -> None:
        now = self.network.sim.now
        packet = Packet(src=self.src, dst=self.dst, size=self.mss,
                        kind=PacketKind.DATA, flow_id=self.flow_id, seq=seq,
                        payload=f"{self.flow_id}:{seq}".encode())
        self.network.routers[self.src].originate(packet)
        self.data_sent += 1
        if retransmission:
            self.retransmits += 1
            self._retransmitted.add(seq)
        else:
            self._send_times[seq] = now

    def _fast_retransmit(self) -> None:
        self.fast_retransmits += 1
        self._recover = self.next_seq
        self.ssthresh = max(self._flight() / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self._transmit(self.send_base, retransmission=True)
        self._restart_rto()

    def _restart_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = None
        if self._flight() <= 0 and self.completed_at is not None:
            return
        self._rto_event = self.network.sim.schedule(self.rto, self._rto_fire)

    def _rto_fire(self) -> None:
        self._rto_event = None
        if self._flight() <= 0 or self.completed_at is not None:
            return
        self.timeouts += 1
        self._recover = self.next_seq
        self.ssthresh = max(self._flight() / 2.0, 2.0)
        self.cwnd = 1.0
        self.rto = min(self.rto * 2, MAX_RTO)
        self.dupacks = 0
        self._transmit(self.send_base, retransmission=True)
        self._rto_event = self.network.sim.schedule(self.rto, self._rto_fire)

    # -- reporting --------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.completed_at is not None

    def connection_setup_time(self) -> Optional[float]:
        if self.established_at is None or self.connect_started_at is None:
            return None
        return self.established_at - self.connect_started_at

    def goodput_pps(self, until: Optional[float] = None) -> float:
        """Cumulatively acknowledged segments per second of established time."""
        if self.established_at is None:
            return 0.0
        end = self.completed_at or until or self.network.sim.now
        elapsed = max(1e-9, end - self.established_at)
        return self.acked / elapsed
