"""Output-interface queues: droptail FIFO and RED.

The queue is the locus of *benign* packet loss: when the offered load
briefly exceeds the output link's capacity the buffer fills and packets
are dropped by the queueing discipline.  Protocol χ (Chapter 6) works by
predicting exactly which losses the discipline would produce; everything
beyond that is attributed to malice.

Both disciplines account occupancy in **bytes** against a byte limit, as
in the paper's experiments (queue limits and RED thresholds are quoted in
bytes, e.g. the 45,000 / 54,000-byte average thresholds of Figs 6.12-13).
"""

from __future__ import annotations

import enum
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.net.packet import Packet


class DropReason(enum.Enum):
    CONGESTION = "congestion"  # droptail buffer full
    RED_EARLY = "red_early"  # RED probabilistic early drop
    RED_FORCED = "red_forced"  # RED average above max threshold / hard limit
    MALICIOUS = "malicious"  # injected by an adversary, never by a queue
    TTL_EXPIRED = "ttl_expired"


class QueueEvent:
    """One observable queue transition, as seen by a monitor tap.

    A ``__slots__`` class: one is allocated per enqueue/dequeue/drop on
    every monitored interface, which puts it on the simulator hot path.
    """

    __slots__ = ("kind", "time", "packet", "occupancy", "reason",
                 "drop_prob")

    def __init__(self, kind: str, time: float, packet: Packet,
                 occupancy: int, reason: Optional[DropReason] = None,
                 drop_prob: float = 0.0) -> None:
        self.kind = kind  # "enqueue" | "dequeue" | "drop"
        self.time = time
        self.packet = packet
        self.occupancy = occupancy  # bytes queued after the event
        self.reason = reason
        self.drop_prob = drop_prob  # RED drop prob in force at the event

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in self.__slots__)

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueueEvent({self.kind!r}, t={self.time}, "
                f"occ={self.occupancy}, reason={self.reason})")


class DropTailQueue:
    """Plain FIFO with a byte limit.

    ``offer`` returns True when the packet was accepted.  The decision is
    purely deterministic: a packet is dropped iff it does not fit, which
    is what makes χ's queue prediction exact for droptail (§6.2.1).
    """

    __slots__ = ("limit_bytes", "_packets", "occupancy", "drops",
                 "enqueues")

    def __init__(self, limit_bytes: int = 64_000) -> None:
        if limit_bytes <= 0:
            raise ValueError("queue limit must be positive")
        self.limit_bytes = limit_bytes
        self._packets: Deque[Packet] = deque()
        self.occupancy = 0
        self.drops = 0
        self.enqueues = 0

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def empty(self) -> bool:
        return not self._packets

    def fits(self, packet: Packet) -> bool:
        return self.occupancy + packet.size <= self.limit_bytes

    def offer(self, packet: Packet, now: float) -> Tuple[bool, Optional[DropReason], float]:
        """Try to enqueue.  Returns (accepted, drop_reason, drop_prob)."""
        if not self.fits(packet):
            self.drops += 1
            return (False, DropReason.CONGESTION, 1.0)
        self._packets.append(packet)
        self.occupancy += packet.size
        self.enqueues += 1
        return (True, None, 0.0)

    def pop(self, now: float) -> Optional[Packet]:
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self.occupancy -= packet.size
        return packet

    def fill_fraction(self) -> float:
        return self.occupancy / self.limit_bytes


@dataclass
class REDParams:
    """Floyd/Jacobson RED configuration (byte mode, gentle variant)."""

    min_th: int = 15_000  # bytes of average queue below which nothing drops
    max_th: int = 45_000  # bytes above which drop prob ramps past max_p
    max_p: float = 0.10
    weight: float = 0.002  # EWMA weight w_q
    mean_pktsize: int = 1000  # used for the idle-time average decay
    gentle: bool = True  # ramp max_p -> 1 between max_th and 2*max_th
    # Byte mode: scale the drop probability by packet size / mean size,
    # so small packets (ACKs, SYNs) are rarely dropped — standard RED
    # behaviour, and the property that makes malicious SYN drops stand
    # out statistically (Fig 6.16).
    byte_mode: bool = True

    def validate(self) -> None:
        if not (0 < self.min_th < self.max_th):
            raise ValueError("need 0 < min_th < max_th")
        if not (0 < self.max_p <= 1):
            raise ValueError("max_p must be in (0, 1]")
        if not (0 < self.weight <= 1):
            raise ValueError("weight must be in (0, 1]")


def red_drop_probability(avg: float, params: REDParams, count: int = -1) -> float:
    """The marking probability RED applies at average queue size ``avg``.

    Implements the standard p_b ramp with the ``count`` correction
    p_a = p_b / (1 - count * p_b); pass ``count=-1`` (the reset value) to
    get the base probability.  This function is shared by the live queue
    and by χ's validator, which re-derives the probability each dropped
    packet faced (Fig 6.10).
    """
    params.validate()
    return _red_drop_probability_unchecked(avg, params, count)


def _red_drop_probability_unchecked(avg: float, params: REDParams,
                                    count: int) -> float:
    # The per-arrival path: REDQueue validates its params once at
    # construction, so the live queue skips re-validating per packet.
    if avg < params.min_th:
        return 0.0
    if avg >= params.max_th:
        if not params.gentle:
            return 1.0
        if avg >= 2 * params.max_th:
            return 1.0
        # gentle region: linear from max_p at max_th to 1 at 2*max_th
        frac = (avg - params.max_th) / params.max_th
        return params.max_p + (1.0 - params.max_p) * frac
    p_b = params.max_p * (avg - params.min_th) / (params.max_th - params.min_th)
    if count >= 0 and count * p_b < 1.0:
        p_a = p_b / (1.0 - count * p_b)
        return min(1.0, p_a)
    if count >= 0:
        return 1.0
    return p_b


def red_packet_drop_probability(avg: float, params: REDParams, count: int,
                                size: int) -> float:
    """Per-packet drop probability, honouring byte mode."""
    prob = red_drop_probability(avg, params, count)
    if params.byte_mode and 0.0 < prob < 1.0:
        prob = min(1.0, prob * size / params.mean_pktsize)
    return prob


class REDQueue:
    """Random Early Detection queue (byte-based, gentle).

    Tracks the exponentially weighted average occupancy; arrivals are
    dropped probabilistically once the average exceeds ``min_th``.  The
    RNG is injected so experiments are reproducible, and so that the
    validator's *inability* to see it is faithful: χ's RED traffic
    validation (§6.5.2) must reason about drop probabilities, not
    outcomes.
    """

    __slots__ = ("limit_bytes", "params", "rng", "_packets", "occupancy",
                 "avg", "count", "_idle_since", "drops", "enqueues")

    def __init__(
        self,
        limit_bytes: int = 64_000,
        params: Optional[REDParams] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if limit_bytes <= 0:
            raise ValueError("queue limit must be positive")
        self.limit_bytes = limit_bytes
        self.params = params or REDParams()
        self.params.validate()
        self.rng = rng or random.Random(0)
        self._packets: Deque[Packet] = deque()
        self.occupancy = 0
        self.avg = 0.0
        self.count = -1  # packets since last drop, RED's uniformization
        self._idle_since: Optional[float] = 0.0
        self.drops = 0
        self.enqueues = 0

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def empty(self) -> bool:
        return not self._packets

    def update_average(self, now: float) -> float:
        """Advance the EWMA to ``now`` (idle decay) and fold in occupancy."""
        w = self.params.weight
        if self.occupancy == 0 and self._idle_since is not None:
            # Decay as if m small packets had been transmitted while idle.
            idle = max(0.0, now - self._idle_since)
            m = idle / 0.001  # 1 ms virtual transmission slots
            self.avg *= (1.0 - w) ** min(m, 10_000.0)
            self._idle_since = now
        self.avg = (1.0 - w) * self.avg + w * self.occupancy
        return self.avg

    def current_drop_prob(self) -> float:
        return red_drop_probability(self.avg, self.params, self.count)

    def offer(self, packet: Packet, now: float) -> Tuple[bool, Optional[DropReason], float]:
        self.update_average(now)
        params = self.params
        prob = _red_drop_probability_unchecked(self.avg, params, self.count)
        if params.byte_mode and 0.0 < prob < 1.0:
            prob = min(1.0, prob * packet.size / params.mean_pktsize)
        if self.occupancy + packet.size > self.limit_bytes:
            self.drops += 1
            self.count = -1
            return (False, DropReason.RED_FORCED, 1.0)
        if prob >= 1.0:
            self.drops += 1
            self.count = -1
            return (False, DropReason.RED_FORCED, prob)
        if prob > 0.0:
            self.count += 1
            if self.rng.random() < prob:
                self.drops += 1
                self.count = 0
                return (False, DropReason.RED_EARLY, prob)
        else:
            self.count = -1
        self._packets.append(packet)
        self.occupancy += packet.size
        self.enqueues += 1
        self._idle_since = None
        return (True, None, prob)

    def pop(self, now: float) -> Optional[Packet]:
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self.occupancy -= packet.size
        if self.occupancy == 0:
            self._idle_since = now
        return packet

    def fill_fraction(self) -> float:
        return self.occupancy / self.limit_bytes
