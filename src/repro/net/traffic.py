"""Application-level traffic sources.

Sources originate packets at a (terminal) router and count deliveries at
the sink router, so experiments can measure end-to-end loss and goodput.
All randomness is seeded for reproducibility.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.net.packet import Packet, PacketKind
from repro.net.router import Network


class _SourceBase:
    """Shared plumbing: registration at the sink, delivery accounting."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        flow_id: str,
        packet_size: int = 1000,
    ) -> None:
        if src not in network.routers or dst not in network.routers:
            raise KeyError(f"unknown router in flow {src}->{dst}")
        self.network = network
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.packet_size = packet_size
        self.sent = 0
        self.received = 0
        self.delivery_times: List[float] = []
        self._stopped = False
        network.routers[dst].register_flow(flow_id, self._on_deliver)

    def _on_deliver(self, packet: Packet, time: float) -> None:
        self.received += 1
        self.delivery_times.append(time)

    def stop(self) -> None:
        self._stopped = True

    @property
    def loss_count(self) -> int:
        return self.sent - self.received

    def _emit(self, seq: int) -> None:
        packet = Packet(
            src=self.src,
            dst=self.dst,
            size=self.packet_size,
            kind=PacketKind.DATA,
            flow_id=self.flow_id,
            seq=seq,
            payload=f"{self.flow_id}:{seq}".encode(),
        )
        self.network.routers[self.src].originate(packet)
        self.sent += 1


class CBRSource(_SourceBase):
    """Constant bit rate: one packet every ``interval`` seconds."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        flow_id: str,
        rate_bps: float,
        packet_size: int = 1000,
        start: float = 0.0,
        duration: Optional[float] = None,
    ) -> None:
        super().__init__(network, src, dst, flow_id, packet_size)
        self.interval = packet_size * 8.0 / rate_bps
        self.end_time = None if duration is None else start + duration
        network.sim.schedule_at(start, self._tick, 0)

    def _tick(self, seq: int) -> None:
        if self._stopped:
            return
        now = self.network.sim.now
        if self.end_time is not None and now >= self.end_time:
            return
        self._emit(seq)
        self.network.sim.schedule(self.interval, self._tick, seq + 1)


class PoissonSource(_SourceBase):
    """Poisson packet arrivals at a mean rate (packets/second)."""

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        flow_id: str,
        rate_pps: float,
        packet_size: int = 1000,
        start: float = 0.0,
        duration: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(network, src, dst, flow_id, packet_size)
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.rate_pps = rate_pps
        self.rng = random.Random(seed)
        self.end_time = None if duration is None else start + duration
        network.sim.schedule_at(
            start + self.rng.expovariate(rate_pps), self._tick, 0
        )

    def _tick(self, seq: int) -> None:
        if self._stopped:
            return
        now = self.network.sim.now
        if self.end_time is not None and now >= self.end_time:
            return
        self._emit(seq)
        self.network.sim.schedule(
            self.rng.expovariate(self.rate_pps), self._tick, seq + 1
        )


class OnOffSource(_SourceBase):
    """Bursty on/off source: CBR during exponential on-periods.

    This is the classic bursty cross-traffic shape that fills router
    buffers and produces the congestive losses χ must explain away.
    """

    def __init__(
        self,
        network: Network,
        src: str,
        dst: str,
        flow_id: str,
        rate_bps: float,
        mean_on: float = 0.5,
        mean_off: float = 0.5,
        packet_size: int = 1000,
        start: float = 0.0,
        duration: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(network, src, dst, flow_id, packet_size)
        self.interval = packet_size * 8.0 / rate_bps
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.rng = random.Random(seed)
        self.end_time = None if duration is None else start + duration
        self._seq = 0
        self._on_until = 0.0
        network.sim.schedule_at(start, self._start_burst)

    def _start_burst(self) -> None:
        if self._stopped:
            return
        now = self.network.sim.now
        if self.end_time is not None and now >= self.end_time:
            return
        self._on_until = now + self.rng.expovariate(1.0 / self.mean_on)
        self._tick()

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.network.sim.now
        if self.end_time is not None and now >= self.end_time:
            return
        if now >= self._on_until:
            off = self.rng.expovariate(1.0 / self.mean_off)
            self.network.sim.schedule(off, self._start_burst)
            return
        self._emit(self._seq)
        self._seq += 1
        self.network.sim.schedule(self.interval, self._tick)
