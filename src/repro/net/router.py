"""Routers, output interfaces, and the assembled network.

The model follows §4.1: output-buffered routers joined by directional
links.  Each output interface owns a queue (droptail or RED) and a
transmitter that serializes packets at link bandwidth; a packet then takes
the link's propagation delay to reach the neighbour.

Three cross-cutting hooks make the rest of the library possible:

* **Monitor taps** observe receive/enqueue/transmit/drop/deliver events.
  The detection protocols' traffic summary generators are taps — they see
  exactly what the paper's in-kernel summary generator would see.
* **Compromise hooks** let an adversary rewrite a router's forwarding
  behaviour (drop/modify/delay/misroute/fabricate), modelling a router
  whose *data plane* is subverted while the simulator stays honest about
  what actually happened (ground truth for evaluating detectors).
* **Control-plane channel** for protocol messages (summaries, alerts),
  with optional in-path interception by protocol-faulty routers.
"""

from __future__ import annotations

import hashlib
import random
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.events import Simulator
from repro.net.packet import Packet
from repro.obs import recorder
from repro.net.queues import DropReason, DropTailQueue
from repro.net.topology import Link, Topology


@lru_cache(maxsize=65536)
def _stable_hash(text: str) -> int:
    """Process-independent 32-bit hash (``hash()`` is salted per run).

    Cached: the ECMP path hashes the same ``src|dst|flow`` triple for
    every packet of a flow, so the sha256 runs once per flow instead of
    once per packet.
    """
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


class MonitorTap:
    """Base class for traffic observers.  Override what you need.

    All times are simulation (true) time; protocols that model clock skew
    translate via :mod:`repro.dist.sync`.
    """

    def on_receive(self, router: "Router", from_nbr: str, packet: Packet,
                   time: float) -> None:
        """Packet fully arrived at ``router`` from ``from_nbr``."""

    def on_enqueue(self, router: "Router", out_nbr: str, packet: Packet,
                   time: float, occupancy: int) -> None:
        """Packet accepted into the output queue toward ``out_nbr``."""

    def on_transmit(self, router: "Router", out_nbr: str, packet: Packet,
                    time: float) -> None:
        """Last bit of packet left ``router`` toward ``out_nbr``."""

    def on_drop(self, router: "Router", out_nbr: Optional[str], packet: Packet,
                time: float, reason: DropReason, drop_prob: float) -> None:
        """Packet lost at ``router`` (queue loss, TTL, or malice)."""

    def on_deliver(self, router: "Router", packet: Packet, time: float) -> None:
        """Packet consumed at its destination router."""

    def on_originate(self, router: "Router", packet: Packet, time: float) -> None:
        """Packet injected into the network at its source router."""


# -- adversary interface ----------------------------------------------------

class ForwardAction:
    """What a compromised router decides to do with a transit packet."""

    FORWARD = "forward"
    DROP = "drop"

    def __init__(self, kind: str, packet: Optional[Packet] = None,
                 out_nbr: Optional[str] = None, delay: float = 0.0) -> None:
        self.kind = kind
        self.packet = packet
        self.out_nbr = out_nbr
        self.delay = delay

    @classmethod
    def forward(cls) -> "ForwardAction":
        return cls(cls.FORWARD)

    @classmethod
    def drop(cls) -> "ForwardAction":
        return cls(cls.DROP)

    @classmethod
    def modify(cls, packet: Packet) -> "ForwardAction":
        return cls(cls.FORWARD, packet=packet)

    @classmethod
    def misroute(cls, out_nbr: str) -> "ForwardAction":
        return cls(cls.FORWARD, out_nbr=out_nbr)

    @classmethod
    def delay(cls, seconds: float) -> "ForwardAction":
        return cls(cls.FORWARD, delay=seconds)


class OutputInterface:
    """One directed link's queue + transmitter at the sending router."""

    def __init__(self, router: "Router", link: Link, queue) -> None:
        self.router = router
        self.link = link
        self.queue = queue
        self.busy = False
        self.bytes_sent = 0
        self.packets_sent = 0

    @property
    def neighbor(self) -> str:
        return self.link.dst

    def enqueue(self, packet: Packet, now: float) -> bool:
        accepted, reason, prob = self.queue.offer(packet, now)
        net = self.router.network
        if not accepted:
            for tap in net.taps:
                tap.on_drop(self.router, self.neighbor, packet, now, reason, prob)
            return False
        for tap in net.taps:
            tap.on_enqueue(self.router, self.neighbor, packet, now,
                           self.queue.occupancy)
        if not self.busy:
            self._start_transmission(now)
        return True

    def _start_transmission(self, now: float) -> None:
        packet = self.queue.pop(now)
        if packet is None:
            self.busy = False
            return
        self.busy = True
        tx_time = self.link.transmission_delay(packet.size)
        self.router.network.sim.schedule(
            tx_time, self._finish_transmission, packet
        )

    def _finish_transmission(self, packet: Packet) -> None:
        net = self.router.network
        now = net.sim.now
        self.bytes_sent += packet.size
        self.packets_sent += 1
        for tap in net.taps:
            tap.on_transmit(self.router, self.neighbor, packet, now)
        if self.link.up:
            net.sim.schedule(self.link.delay, net.arrive, self.neighbor,
                             self.router.name, packet)
        # On a dead link the bits fall on the floor; the control plane
        # notices via missed hellos, not via any magic signal.
        # Immediately begin the next packet, if any.
        self._start_transmission(now)


class Router:
    """An output-buffered router."""

    def __init__(
        self,
        name: str,
        network: "Network",
        proc_jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.network = network
        self.interfaces: Dict[str, OutputInterface] = {}
        # dst -> list of next hops (ECMP); chosen deterministically by flow hash.
        self.forwarding_table: Dict[str, List[str]] = {}
        # (src, dst) -> next hops; the policy-based routing of §5.3.1 that
        # lets a router avoid suspected path-segments it sits inside.
        self.policy_table: Dict[Tuple[str, str], List[str]] = {}
        self.compromise = None  # type: Optional[Any]
        self.proc_jitter = proc_jitter
        # seed=0 reproduces the historical per-name stream exactly; any
        # other seed perturbs every router's jitter stream deterministically.
        self._rng = random.Random(_stable_hash(name) ^ (seed * 0x9E3779B97F4A7C15))
        # Local "applications": flow_id -> callback(packet, time)
        self.local_flows: Dict[str, Callable[[Packet, float], None]] = {}
        self.delivered = 0
        self.forwarded = 0

    # -- wiring ------------------------------------------------------------
    def add_interface(self, link: Link, queue) -> None:
        self.interfaces[link.dst] = OutputInterface(self, link, queue)

    def neighbors(self) -> List[str]:
        return list(self.interfaces)

    def register_flow(self, flow_id: str,
                      handler: Callable[[Packet, float], None]) -> None:
        self.local_flows[flow_id] = handler

    # -- forwarding --------------------------------------------------------
    def next_hop(self, packet: Packet) -> Optional[str]:
        hops = self.policy_table.get((packet.src, packet.dst))
        if not hops:
            hops = self.forwarding_table.get(packet.dst)
        if not hops:
            return None
        if len(hops) == 1:
            return hops[0]
        # Deterministic ECMP hash on flow identity (§4.1: predictable paths).
        idx = _stable_hash(f"{packet.src}|{packet.dst}|{packet.flow_id}")
        return hops[idx % len(hops)]

    def originate(self, packet: Packet) -> None:
        """Inject a locally sourced packet (terminal router assumed good)."""
        now = self.network.sim.now
        packet.created_at = now
        packet.hops = (self.name,)
        for tap in self.network.taps:
            tap.on_originate(self, packet, now)
        if packet.dst == self.name:
            self._deliver(packet, now)
            return
        self._route(packet, incoming=None, allow_compromise=False)

    def receive(self, packet: Packet, from_nbr: str) -> None:
        now = self.network.sim.now
        for tap in self.network.taps:
            tap.on_receive(self, from_nbr, packet, now)
        if packet.dst == self.name:
            self._deliver(packet, now)
            return
        self._route(packet, incoming=from_nbr, allow_compromise=True)

    def _deliver(self, packet: Packet, now: float) -> None:
        self.delivered += 1
        for tap in self.network.taps:
            tap.on_deliver(self, packet, now)
        handler = self.local_flows.get(packet.flow_id)
        if handler is not None:
            handler(packet, now)

    def _route(self, packet: Packet, incoming: Optional[str],
               allow_compromise: bool) -> None:
        now = self.network.sim.now
        out_nbr = self.next_hop(packet)
        if out_nbr is None:
            for tap in self.network.taps:
                tap.on_drop(self, None, packet, now,
                            DropReason.CONGESTION, 1.0)
            return
        if packet.expired:
            for tap in self.network.taps:
                tap.on_drop(self, out_nbr, packet, now,
                            DropReason.TTL_EXPIRED, 1.0)
            return

        if allow_compromise and self.compromise is not None:
            iface = self.interfaces.get(out_nbr)
            action = self.compromise.on_forward(
                self, packet, incoming, out_nbr, iface
            )
            if action.kind == ForwardAction.DROP:
                for tap in self.network.taps:
                    tap.on_drop(self, out_nbr, packet, now,
                                DropReason.MALICIOUS, 0.0)
                return
            if action.packet is not None:
                packet = action.packet
            if action.out_nbr is not None:
                if action.out_nbr != out_nbr:
                    rec = recorder()
                    if rec.active:
                        rec.metrics.counter(
                            "repro.net.pkt.misrouted").inc()
                        rec.event(
                            "net.misroute", now,
                            router=self.name,
                            expected=out_nbr,
                            out_nbr=action.out_nbr,
                            flow=packet.flow_id,
                            src=packet.src,
                            dst=packet.dst,
                        )
                out_nbr = action.out_nbr
            if action.delay > 0:
                self.network.sim.schedule(
                    action.delay, self._enqueue_toward, packet, out_nbr
                )
                return

        self._enqueue_toward(packet, out_nbr)

    def _enqueue_toward(self, packet: Packet, out_nbr: str) -> None:
        now = self.network.sim.now
        packet.hop(self.name)
        self.forwarded += 1
        iface = self.interfaces.get(out_nbr)
        if iface is None:
            for tap in self.network.taps:
                tap.on_drop(self, out_nbr, packet, now,
                            DropReason.CONGESTION, 1.0)
            return
        mtu = iface.link.mtu
        if mtu is not None and packet.size > mtu:
            # In-network fragmentation (§7.4.4): split and enqueue each
            # piece.  Fragments carry fresh identities, so any upstream
            # fingerprint of the original packet is now unmatchable.
            for fragment in packet.fragment(mtu):
                if self.proc_jitter > 0:
                    delay = self._rng.uniform(0.0, self.proc_jitter)
                    self.network.sim.schedule(
                        delay, self._jittered_enqueue, iface, fragment)
                else:
                    iface.enqueue(fragment, now)
            return
        if self.proc_jitter > 0:
            delay = self._rng.uniform(0.0, self.proc_jitter)
            self.network.sim.schedule(delay, self._jittered_enqueue, iface, packet)
            return
        iface.enqueue(packet, now)

    def _jittered_enqueue(self, iface: OutputInterface, packet: Packet) -> None:
        iface.enqueue(packet, self.network.sim.now)

    def inject_fabricated(self, packet: Packet, out_nbr: str) -> None:
        """Adversary-only: push a fabricated packet into an output queue."""
        packet.fabricated_by = self.name
        rec = recorder()
        if rec.active:
            rec.metrics.counter("repro.net.pkt.fabricated").inc()
            rec.event("net.fabricate", self.network.sim.now,
                      router=self.name, out_nbr=out_nbr,
                      flow=packet.flow_id, src=packet.src, dst=packet.dst)
        iface = self.interfaces.get(out_nbr)
        if iface is not None:
            iface.enqueue(packet, self.network.sim.now)


class Network:
    """The assembled simulation: topology + routers + event engine."""

    def __init__(
        self,
        topology: Topology,
        sim: Optional[Simulator] = None,
        queue_factory: Optional[Callable[[Link], Any]] = None,
        proc_jitter: float = 0.0,
        control_delay: float = 0.002,
        seed: int = 0,
    ) -> None:
        self.topology = topology
        self.sim = sim or Simulator()
        self.taps: List[MonitorTap] = []
        rec = recorder()
        if rec.active:
            # Duck-typed MonitorTap; attach-only, so a disabled recorder
            # adds nothing to the per-packet tap loops.
            from repro.obs.trace import TraceTap
            self.taps.append(TraceTap(rec))
        self.routers: Dict[str, Router] = {}
        self.control_delay = control_delay
        self.seed = seed
        if queue_factory is None:
            queue_factory = lambda link: DropTailQueue(link.queue_limit)
        for name in topology.routers:
            self.routers[name] = Router(name, self, proc_jitter=proc_jitter,
                                        seed=seed)
        for link in topology.links():
            self.routers[link.src].add_interface(link, queue_factory(link))

    def router(self, name: str) -> Router:
        return self.routers[name]

    def add_tap(self, tap: MonitorTap) -> None:
        self.taps.append(tap)

    def remove_tap(self, tap: MonitorTap) -> None:
        self.taps.remove(tap)

    def arrive(self, at: str, from_nbr: str, packet: Packet) -> None:
        """Link propagation completed: hand the packet to the receiver."""
        self.routers[at].receive(packet, from_nbr)

    # -- link state management ----------------------------------------------
    def fail_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Take a link down (fiber cut).  In-queue packets are lost."""
        self.topology.link(a, b).up = False
        if bidirectional:
            self.topology.link(b, a).up = False
        self.topology.bump_version()

    def restore_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        self.topology.link(a, b).up = True
        if bidirectional:
            self.topology.link(b, a).up = True
        self.topology.bump_version()

    # -- control plane -----------------------------------------------------
    def send_control(
        self,
        src: str,
        dst: str,
        payload: Any,
        on_deliver: Callable[[Any], None],
        via_path: Optional[Sequence[str]] = None,
    ) -> None:
        """Deliver a protocol message from ``src`` to ``dst``.

        When ``via_path`` is given, every *intermediate* compromised router
        on the path gets a chance to intercept (drop or alter) the message
        — this models a protocol-faulty router suppressing the traffic
        summaries of Πk+2 that are exchanged through the monitored
        path-segment itself (§5.2).  Without ``via_path`` the message is
        delivered over an idealized authenticated channel (as Π2's
        consensus assumes sufficient path diversity).
        """
        message = payload
        if via_path is not None:
            for hop in via_path[1:-1]:
                comp = self.routers[hop].compromise
                if comp is None:
                    continue
                message = comp.on_control(self.routers[hop], src, dst, message)
                if message is None:
                    return  # suppressed in transit
        hops = len(via_path) - 1 if via_path else 1
        self.sim.schedule(self.control_delay * max(1, hops),
                          on_deliver, message, )

    # -- convenience -------------------------------------------------------
    def set_forwarding_tables(self, tables: Dict[str, Dict[str, List[str]]]) -> None:
        for name, table in tables.items():
            self.routers[name].forwarding_table = {
                dst: list(hops) for dst, hops in table.items()
            }

    def run(self, until: float) -> None:
        self.sim.run(until=until)
