"""Adversarial router behaviours — the threat taxonomy of §2.2.1.

A :class:`Compromise` object attached to ``router.compromise`` intercepts
every *transit* packet after the forwarding decision and before the output
queue (traffic-faulty behaviour), and every control-plane message relayed
through the router (protocol-faulty behaviour).  Each concrete attack
records ground truth (what it actually did), which the evaluation harness
uses to score detectors without trusting anyone.

Attacks implemented (paper reference in parens):

* drop all / a fraction / selected flows           (packet loss)
* drop selected flows only when the queue is ≥X% full (Fig 6.7/6.8 —
  attacks crafted to hide inside plausible congestion)
* drop selected flows only when the RED average queue exceeds a byte
  threshold, optionally a fraction (Figs 6.12-6.15)
* drop SYN packets toward a victim (Fig 6.9 / 6.16 — disproportionate
  damage from tiny loss counts)
* modify payloads                                   (packet modification)
* reorder by selectively delaying                   (packet reordering)
* delay all matched traffic                         (time behaviour)
* fabricate packets                                 (packet fabrication)
* misroute to the wrong next hop                    (misrouting)
* suppress or corrupt relayed protocol messages     (protocol faulty)
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Set

from repro.net.packet import Packet, PacketKind
from repro.net.queues import REDQueue
from repro.net.router import ForwardAction, Network, Router


class Compromise:
    """Base class: a compromised router that behaves correctly.

    Subclasses override :meth:`should_drop` / :meth:`transform` /
    :meth:`on_control`.  Ground-truth bookkeeping lives here so every
    attack records what it did.
    """

    def __init__(self) -> None:
        self.dropped: List[Packet] = []
        self.drop_times: List[float] = []
        self.modified: List[Packet] = []
        self.delayed: List[Packet] = []
        self.misrouted: List[Packet] = []
        self.suppressed_control = 0
        self.active_from: float = 0.0
        self.active_until: float = float("inf")

    def activate_between(self, start: float, end: float = float("inf")) -> "Compromise":
        """Restrict the attack to a time window (attacks that start late
        are exactly the framing scenario of Fig 3.7)."""
        self.active_from = start
        self.active_until = end
        return self

    # -- hooks ---------------------------------------------------------------
    def on_forward(self, router: Router, packet: Packet, in_nbr: Optional[str],
                   out_nbr: str, iface) -> ForwardAction:
        now = router.network.sim.now
        if not (self.active_from <= now <= self.active_until):
            return ForwardAction.forward()
        if self.should_drop(router, packet, out_nbr, iface):
            self.dropped.append(packet)
            self.drop_times.append(now)
            return ForwardAction.drop()
        return self.transform(router, packet, out_nbr, iface)

    def should_drop(self, router: Router, packet: Packet, out_nbr: str,
                    iface) -> bool:
        return False

    def transform(self, router: Router, packet: Packet, out_nbr: str,
                  iface) -> ForwardAction:
        return ForwardAction.forward()

    def on_control(self, router: Router, src: str, dst: str, message):
        """Relayed protocol message; return it (possibly altered) or None."""
        return message

    @property
    def malicious_drop_count(self) -> int:
        return len(self.dropped)


class DropAllAttack(Compromise):
    """Black-hole every transit packet."""

    def should_drop(self, router, packet, out_nbr, iface) -> bool:
        return True


class DropFractionAttack(Compromise):
    """Drop a random fraction of all transit packets."""

    def __init__(self, fraction: float, seed: int = 0) -> None:
        super().__init__()
        if not (0 <= fraction <= 1):
            raise ValueError("fraction must be in [0, 1]")
        self.fraction = fraction
        self.rng = random.Random(seed)

    def should_drop(self, router, packet, out_nbr, iface) -> bool:
        return self.rng.random() < self.fraction


class DropFlowAttack(Compromise):
    """Drop (a fraction of) packets belonging to selected flows.

    This is "Attack 1: drop 20% of the selected flows" (Fig 6.6) with
    ``fraction=0.2``.
    """

    def __init__(self, flows: Sequence[str], fraction: float = 1.0,
                 seed: int = 0) -> None:
        super().__init__()
        self.flows: Set[str] = set(flows)
        self.fraction = fraction
        self.rng = random.Random(seed)

    def should_drop(self, router, packet, out_nbr, iface) -> bool:
        if packet.flow_id not in self.flows:
            return False
        return self.rng.random() < self.fraction


class QueueConditionalDropAttack(Compromise):
    """Drop selected flows only when the output queue is nearly full.

    Figs 6.7/6.8: the adversary hides behind plausible congestion by
    dropping only when the droptail queue is ≥ ``fill_threshold`` full
    (0.90 / 0.95) — exactly when a static-threshold detector cannot tell
    the drop from overflow.
    """

    def __init__(self, flows: Sequence[str], fill_threshold: float,
                 fraction: float = 1.0, seed: int = 0) -> None:
        super().__init__()
        self.flows = set(flows)
        self.fill_threshold = fill_threshold
        self.fraction = fraction
        self.rng = random.Random(seed)

    def should_drop(self, router, packet, out_nbr, iface) -> bool:
        if packet.flow_id not in self.flows or iface is None:
            return False
        if iface.queue.fill_fraction() < self.fill_threshold:
            return False
        return self.rng.random() < self.fraction


class REDAverageConditionalDropAttack(Compromise):
    """Drop selected flows when the RED *average* queue exceeds a level.

    Figs 6.12-6.15: thresholds of 45,000 / 54,000 bytes, optionally only a
    fraction of matching packets (10% / 5%) — attacks tuned to sit inside
    RED's own probabilistic drop regime.
    """

    def __init__(self, flows: Sequence[str], avg_threshold: float,
                 fraction: float = 1.0, seed: int = 0) -> None:
        super().__init__()
        self.flows = set(flows)
        self.avg_threshold = avg_threshold
        self.fraction = fraction
        self.rng = random.Random(seed)

    def should_drop(self, router, packet, out_nbr, iface) -> bool:
        if packet.flow_id not in self.flows or iface is None:
            return False
        queue = iface.queue
        if not isinstance(queue, REDQueue):
            return False
        if queue.avg < self.avg_threshold:
            return False
        return self.rng.random() < self.fraction


class SynDropAttack(Compromise):
    """Drop SYN packets toward a victim destination (Fig 6.9 / 6.16)."""

    def __init__(self, victim_dst: str, fraction: float = 1.0,
                 seed: int = 0, max_drops: Optional[int] = None) -> None:
        super().__init__()
        self.victim_dst = victim_dst
        self.fraction = fraction
        self.max_drops = max_drops
        self.rng = random.Random(seed)

    def should_drop(self, router, packet, out_nbr, iface) -> bool:
        if packet.kind is not PacketKind.SYN or packet.dst != self.victim_dst:
            return False
        if self.max_drops is not None and len(self.dropped) >= self.max_drops:
            return False
        return self.rng.random() < self.fraction


class ModifyAttack(Compromise):
    """Corrupt the payload of (a fraction of) selected-flow packets."""

    def __init__(self, flows: Optional[Sequence[str]] = None,
                 fraction: float = 1.0, seed: int = 0) -> None:
        super().__init__()
        self.flows = set(flows) if flows is not None else None
        self.fraction = fraction
        self.rng = random.Random(seed)

    def transform(self, router, packet, out_nbr, iface) -> ForwardAction:
        if self.flows is not None and packet.flow_id not in self.flows:
            return ForwardAction.forward()
        if packet.kind is not PacketKind.DATA:
            return ForwardAction.forward()
        if self.rng.random() >= self.fraction:
            return ForwardAction.forward()
        evil = packet.clone_modified(packet.payload + b"!tampered")
        self.modified.append(evil)
        return ForwardAction.modify(evil)


class ReorderAttack(Compromise):
    """Reorder by holding back every ``period``-th matched packet."""

    def __init__(self, flows: Optional[Sequence[str]] = None,
                 period: int = 4, hold: float = 0.05) -> None:
        super().__init__()
        if period < 2:
            raise ValueError("period must be >= 2")
        self.flows = set(flows) if flows is not None else None
        self.period = period
        self.hold = hold
        self._count = 0

    def transform(self, router, packet, out_nbr, iface) -> ForwardAction:
        if self.flows is not None and packet.flow_id not in self.flows:
            return ForwardAction.forward()
        if packet.kind is not PacketKind.DATA:
            return ForwardAction.forward()
        self._count += 1
        if self._count % self.period == 0:
            self.delayed.append(packet)
            return ForwardAction.delay(self.hold)
        return ForwardAction.forward()


class DelayAttack(Compromise):
    """Add constant extra latency to matched packets (time behaviour)."""

    def __init__(self, delay: float, flows: Optional[Sequence[str]] = None) -> None:
        super().__init__()
        self.extra = delay
        self.flows = set(flows) if flows is not None else None

    def transform(self, router, packet, out_nbr, iface) -> ForwardAction:
        if self.flows is not None and packet.flow_id not in self.flows:
            return ForwardAction.forward()
        self.delayed.append(packet)
        return ForwardAction.delay(self.extra)


class FabricateAttack(Compromise):
    """Periodically inject forged packets claiming a legitimate source.

    Call :meth:`start` once the network is built; fabrication is an
    active behaviour, not a per-packet transform.
    """

    def __init__(self, network: Network, router_name: str, out_nbr: str,
                 forged_src: str, forged_dst: str, flow_id: str,
                 rate_pps: float, seed: int = 0) -> None:
        super().__init__()
        self.network = network
        self.router_name = router_name
        self.out_nbr = out_nbr
        self.forged_src = forged_src
        self.forged_dst = forged_dst
        self.flow_id = flow_id
        self.interval = 1.0 / rate_pps
        self.fabricated: List[Packet] = []
        self._seq = 0

    def start(self, at: float = 0.0) -> None:
        self.network.sim.schedule_at(at, self._inject)

    def _inject(self) -> None:
        now = self.network.sim.now
        if not (self.active_from <= now <= self.active_until):
            self.network.sim.schedule(self.interval, self._inject)
            return
        packet = Packet(src=self.forged_src, dst=self.forged_dst,
                        kind=PacketKind.DATA, flow_id=self.flow_id,
                        seq=self._seq, payload=b"forged")
        self._seq += 1
        self.fabricated.append(packet)
        self.network.routers[self.router_name].inject_fabricated(
            packet, self.out_nbr
        )
        self.network.sim.schedule(self.interval, self._inject)


class MisrouteAttack(Compromise):
    """Send matched packets to the wrong neighbour (detour/divert)."""

    def __init__(self, wrong_nbr: str,
                 flows: Optional[Sequence[str]] = None,
                 fraction: float = 1.0, seed: int = 0) -> None:
        super().__init__()
        self.wrong_nbr = wrong_nbr
        self.flows = set(flows) if flows is not None else None
        self.fraction = fraction
        self.rng = random.Random(seed)

    def transform(self, router, packet, out_nbr, iface) -> ForwardAction:
        if self.flows is not None and packet.flow_id not in self.flows:
            return ForwardAction.forward()
        if out_nbr == self.wrong_nbr:
            return ForwardAction.forward()
        if self.rng.random() >= self.fraction:
            return ForwardAction.forward()
        self.misrouted.append(packet)
        return ForwardAction.misroute(self.wrong_nbr)


class ControlSuppressionAttack(Compromise):
    """Protocol-faulty only: silently drop relayed protocol messages.

    Πk+2 exchanges summaries *through the monitored path-segment*; a
    router that suppresses them is detected because the exchange times
    out (§5.2, Fig 5.3).
    """

    def __init__(self, match: Optional[Callable[[object], bool]] = None) -> None:
        super().__init__()
        self.match = match

    def on_control(self, router, src, dst, message):
        if self.match is None or self.match(message):
            self.suppressed_control += 1
            return None
        return message


class CombinedCompromise(Compromise):
    """Compose several behaviours (e.g. traffic-faulty + protocol-faulty)."""

    def __init__(self, *parts: Compromise) -> None:
        super().__init__()
        self.parts = list(parts)

    def on_forward(self, router, packet, in_nbr, out_nbr, iface) -> ForwardAction:
        for part in self.parts:
            action = part.on_forward(router, packet, in_nbr, out_nbr, iface)
            if action.kind == ForwardAction.DROP:
                self.dropped.append(packet)
                return action
            if action.packet is not None or action.out_nbr is not None or action.delay > 0:
                return action
        return ForwardAction.forward()

    def on_control(self, router, src, dst, message):
        for part in self.parts:
            message = part.on_control(router, src, dst, message)
            if message is None:
                self.suppressed_control += 1
                return None
        return message
