"""Packets and their invariant identity.

A packet models the fields the detection protocols care about: an
end-to-end invariant part (addresses, flow/port identifiers, sequence
number, payload) and mutable per-hop fields (TTL, header checksum) that a
correct router legitimately rewrites.  Fingerprints (see
:mod:`repro.crypto.fingerprint`) must be computed over the invariant part
only — the paper discusses exactly this subtlety in §7.4.2.

``Packet`` is a ``__slots__`` class on the simulator's hottest allocation
path: every CBR/TCP send, ACK and control message allocates one, and every
hop touches its checksum.  The header-field contribution to the checksum
is summed once (``_hdr_sum``) since those fields are invariant along the
path; per-hop recomputation then reduces to one add and one mask, which is
arithmetically identical to the per-character loop because addition mod
2**16 can be masked once at the end.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional, Tuple

_packet_ids = itertools.count(1)


class PacketKind(enum.Enum):
    """Transport-level role of a packet."""

    DATA = "data"
    ACK = "ack"
    SYN = "syn"
    SYN_ACK = "syn_ack"
    CONTROL = "control"  # protocol messages (summaries, LSAs, alerts)
    PROBE = "probe"


DEFAULT_TTL = 64

#: Field order of ``__eq__``/``__repr__`` and keyword construction —
#: the historical dataclass field list.
_FIELDS = (
    "src", "dst", "size", "kind", "flow_id", "seq", "payload", "ttl",
    "checksum", "uid", "created_at", "fragment_of", "fragment_index",
    "last_fragment", "hops", "fabricated_by",
)


class Packet:
    """A network packet.

    ``src``/``dst`` are router (or host) names.  ``flow_id`` identifies the
    transport flow; ``seq`` is the transport sequence number.  ``payload``
    stands in for the packet body: any hashable value, typically bytes.

    ``ttl`` and ``checksum`` are the per-hop mutable fields.  A correct
    router decrements ``ttl`` and recomputes ``checksum`` on every hop; a
    malicious router may corrupt the invariant fields, which is what
    content validation detects.
    """

    __slots__ = _FIELDS + ("_hdr_sum", "_fp_cache")

    def __init__(
        self,
        src: str,
        dst: str,
        size: int = 1000,
        kind: PacketKind = PacketKind.DATA,
        flow_id: str = "",
        seq: int = 0,
        payload: bytes = b"",
        ttl: int = DEFAULT_TTL,
        checksum: int = 0,
        uid: Optional[int] = None,
        created_at: float = 0.0,
        # Fragmentation (§7.4.4).  A fragment carries its original
        # packet's uid; its own uid (hence fingerprint) is fresh — which
        # is exactly why in-network fragmentation breaks pre-computed
        # upstream fingerprints.
        fragment_of: Optional[int] = None,
        fragment_index: int = 0,
        last_fragment: bool = True,
        # Bookkeeping used by the simulator and experiments (not "on the
        # wire").
        hops: Tuple[str, ...] = (),
        fabricated_by: Optional[str] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.src = src
        self.dst = dst
        self.size = size
        self.kind = kind
        self.flow_id = flow_id
        self.seq = seq
        self.payload = payload
        self.ttl = ttl
        self.uid = next(_packet_ids) if uid is None else uid
        self.created_at = created_at
        self.fragment_of = fragment_of
        self.fragment_index = fragment_index
        self.last_fragment = last_fragment
        self.hops = hops
        self.fabricated_by = fabricated_by
        acc = 0
        for part in (src, dst, flow_id):
            for ch in part:
                acc += ord(ch)
        self._hdr_sum = acc + seq + size
        self.checksum = (self._hdr_sum + ttl) & 0xFFFF
        self._fp_cache = None  # (key, invariant tuple, digest) — see crypto

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in _FIELDS)

    # Like the historical eq=True dataclass: equality without hashing.
    __hash__ = None  # type: ignore[assignment]

    def invariant_fields(self) -> tuple:
        """The end-to-end invariant identity of this packet.

        Excludes ``ttl`` and ``checksum`` (mutated hop-by-hop) and all
        simulator bookkeeping.  Fingerprints must be computed over exactly
        this tuple so that the same packet observed at different routers
        yields the same fingerprint.
        """
        return (
            self.src,
            self.dst,
            self.size,
            self.kind.value,
            self.flow_id,
            self.seq,
            self.payload,
            self.uid,
            self.fragment_of if self.fragment_of is not None else -1,
            self.fragment_index,
        )

    def compute_checksum(self) -> int:
        """A toy internet-checksum stand-in over header fields + TTL."""
        return (self._hdr_sum + self.ttl) & 0xFFFF

    def hop(self, router_name: str) -> None:
        """Apply correct per-hop mutation: decrement TTL, fix checksum."""
        ttl = self.ttl - 1
        self.ttl = ttl
        self.checksum = (self._hdr_sum + ttl) & 0xFFFF
        self.hops = self.hops + (router_name,)

    @property
    def expired(self) -> bool:
        return self.ttl <= 0

    def fragment(self, mtu: int) -> list:
        """Split into MTU-sized fragments (§7.4.4).

        Each fragment gets a fresh uid and therefore a fresh fingerprint
        — faithfully modelling why fingerprints computed upstream of the
        fragmenting router stop matching downstream observations.
        """
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        if self.size <= mtu:
            return [self]
        fragments = []
        remaining = self.size
        index = 0
        while remaining > 0:
            piece = min(mtu, remaining)
            remaining -= piece
            frag = Packet(
                src=self.src, dst=self.dst, size=piece, kind=self.kind,
                flow_id=self.flow_id, seq=self.seq,
                payload=self.payload, ttl=self.ttl,
            )
            frag.fragment_of = self.uid
            frag.fragment_index = index
            frag.last_fragment = remaining == 0
            frag.created_at = self.created_at
            frag.hops = self.hops
            fragments.append(frag)
            index += 1
        return fragments

    def clone_modified(self, payload: bytes) -> "Packet":
        """Return a maliciously modified copy (same uid, altered payload).

        The uid is preserved because on the wire a modified packet occupies
        the position of the original; content validation distinguishes the
        two by fingerprint, not uid.
        """
        twin = Packet(
            src=self.src,
            dst=self.dst,
            size=self.size,
            kind=self.kind,
            flow_id=self.flow_id,
            seq=self.seq,
            payload=payload,
            ttl=self.ttl,
        )
        twin.uid = self.uid
        twin.created_at = self.created_at
        twin.hops = self.hops
        return twin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(uid={self.uid}, {self.src}->{self.dst}, "
            f"{self.kind.value}, flow={self.flow_id!r}, seq={self.seq}, "
            f"size={self.size})"
        )
