"""Packets and their invariant identity.

A packet models the fields the detection protocols care about: an
end-to-end invariant part (addresses, flow/port identifiers, sequence
number, payload) and mutable per-hop fields (TTL, header checksum) that a
correct router legitimately rewrites.  Fingerprints (see
:mod:`repro.crypto.fingerprint`) must be computed over the invariant part
only — the paper discusses exactly this subtlety in §7.4.2.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

_packet_ids = itertools.count(1)


class PacketKind(enum.Enum):
    """Transport-level role of a packet."""

    DATA = "data"
    ACK = "ack"
    SYN = "syn"
    SYN_ACK = "syn_ack"
    CONTROL = "control"  # protocol messages (summaries, LSAs, alerts)
    PROBE = "probe"


DEFAULT_TTL = 64


@dataclass
class Packet:
    """A network packet.

    ``src``/``dst`` are router (or host) names.  ``flow_id`` identifies the
    transport flow; ``seq`` is the transport sequence number.  ``payload``
    stands in for the packet body: any hashable value, typically bytes.

    ``ttl`` and ``checksum`` are the per-hop mutable fields.  A correct
    router decrements ``ttl`` and recomputes ``checksum`` on every hop; a
    malicious router may corrupt the invariant fields, which is what
    content validation detects.
    """

    src: str
    dst: str
    size: int = 1000
    kind: PacketKind = PacketKind.DATA
    flow_id: str = ""
    seq: int = 0
    payload: bytes = b""
    ttl: int = DEFAULT_TTL
    checksum: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    # Fragmentation (§7.4.4).  A fragment carries its original packet's
    # uid; its own uid (hence fingerprint) is fresh — which is exactly why
    # in-network fragmentation breaks pre-computed upstream fingerprints.
    fragment_of: Optional[int] = None
    fragment_index: int = 0
    last_fragment: bool = True
    # Bookkeeping used by the simulator and experiments (not "on the wire").
    hops: Tuple[str, ...] = ()
    fabricated_by: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")
        self.checksum = self.compute_checksum()

    def invariant_fields(self) -> tuple:
        """The end-to-end invariant identity of this packet.

        Excludes ``ttl`` and ``checksum`` (mutated hop-by-hop) and all
        simulator bookkeeping.  Fingerprints must be computed over exactly
        this tuple so that the same packet observed at different routers
        yields the same fingerprint.
        """
        return (
            self.src,
            self.dst,
            self.size,
            self.kind.value,
            self.flow_id,
            self.seq,
            self.payload,
            self.uid,
            self.fragment_of if self.fragment_of is not None else -1,
            self.fragment_index,
        )

    def compute_checksum(self) -> int:
        """A toy internet-checksum stand-in over header fields + TTL."""
        acc = self.ttl
        for part in (self.src, self.dst, self.flow_id):
            for ch in part:
                acc = (acc + ord(ch)) & 0xFFFF
        acc = (acc + self.seq + self.size) & 0xFFFF
        return acc

    def hop(self, router_name: str) -> None:
        """Apply correct per-hop mutation: decrement TTL, fix checksum."""
        self.ttl -= 1
        self.checksum = self.compute_checksum()
        self.hops = self.hops + (router_name,)

    @property
    def expired(self) -> bool:
        return self.ttl <= 0

    def fragment(self, mtu: int) -> list:
        """Split into MTU-sized fragments (§7.4.4).

        Each fragment gets a fresh uid and therefore a fresh fingerprint
        — faithfully modelling why fingerprints computed upstream of the
        fragmenting router stop matching downstream observations.
        """
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        if self.size <= mtu:
            return [self]
        fragments = []
        remaining = self.size
        index = 0
        while remaining > 0:
            piece = min(mtu, remaining)
            remaining -= piece
            frag = Packet(
                src=self.src, dst=self.dst, size=piece, kind=self.kind,
                flow_id=self.flow_id, seq=self.seq,
                payload=self.payload, ttl=self.ttl,
            )
            frag.fragment_of = self.uid
            frag.fragment_index = index
            frag.last_fragment = remaining == 0
            frag.created_at = self.created_at
            frag.hops = self.hops
            fragments.append(frag)
            index += 1
        return fragments

    def clone_modified(self, payload: bytes) -> "Packet":
        """Return a maliciously modified copy (same uid, altered payload).

        The uid is preserved because on the wire a modified packet occupies
        the position of the original; content validation distinguishes the
        two by fingerprint, not uid.
        """
        twin = Packet(
            src=self.src,
            dst=self.dst,
            size=self.size,
            kind=self.kind,
            flow_id=self.flow_id,
            seq=self.seq,
            payload=payload,
            ttl=self.ttl,
        )
        twin.uid = self.uid
        twin.created_at = self.created_at
        twin.hops = self.hops
        return twin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(uid={self.uid}, {self.src}->{self.dst}, "
            f"{self.kind.value}, flow={self.flow_id!r}, seq={self.seq}, "
            f"size={self.size})"
        )
