"""Hash chains (Lamport) — the TESLA-style primitive listed in §2.1.5.

A chain anchors trust in a single commitment: release values backwards
and any receiver holding the anchor can authenticate them with repeated
hashing.  Used by the library's delayed-authentication sampling variant
(the "SaltProbing" idea of §3.11) and exercised by the test suite as a
substrate invariant.
"""

from __future__ import annotations

import hashlib
from typing import List


def _h(value: bytes) -> bytes:
    return hashlib.sha256(value).digest()


class HashChain:
    """h^n(seed), released from the end toward the seed."""

    def __init__(self, seed: bytes, length: int) -> None:
        if length < 1:
            raise ValueError("chain length must be >= 1")
        self._values: List[bytes] = [seed]
        for _ in range(length):
            self._values.append(_h(self._values[-1]))
        self._next_release = length  # index of last unreleased value

    @property
    def anchor(self) -> bytes:
        """The public commitment h^n(seed)."""
        return self._values[-1]

    @property
    def remaining(self) -> int:
        return self._next_release

    def release(self) -> bytes:
        """Disclose the next value (one step closer to the seed)."""
        if self._next_release <= 0:
            raise RuntimeError("hash chain exhausted")
        self._next_release -= 1
        return self._values[self._next_release]

    @staticmethod
    def verify(value: bytes, anchor: bytes, max_steps: int) -> bool:
        """Does hashing ``value`` at most ``max_steps`` times reach anchor?"""
        current = value
        for _ in range(max_steps):
            current = _h(current)
            if current == anchor:
                return True
        return False
