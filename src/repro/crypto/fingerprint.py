"""Packet fingerprints.

A fingerprint is a short one-way digest of a packet that is *stable along
the path*: it must be computed over the end-to-end invariant fields only,
excluding TTL and header checksum which correct routers rewrite hop-by-hop
(§7.4.2).  The paper's prototype uses UHASH; we use keyed BLAKE2b, which
gives the same interface properties (collision resistance, keyed so that
an adversary cannot engineer collisions against monitors).
"""

from __future__ import annotations

import hashlib

from repro.net.packet import Packet

FINGERPRINT_BYTES = 8  # 64-bit fingerprints, as in the prototype


def _encode_field(value) -> bytes:
    if isinstance(value, bytes):
        return b"b" + len(value).to_bytes(4, "big") + value
    if isinstance(value, str):
        raw = value.encode()
        return b"s" + len(raw).to_bytes(4, "big") + raw
    if isinstance(value, bool):
        return b"?" + bytes([value])
    if isinstance(value, int):
        raw = value.to_bytes(16, "big", signed=True)
        return b"i" + raw
    raise TypeError(f"cannot encode field of type {type(value)!r}")


def fingerprint_bytes(packet: Packet, key: bytes = b"") -> bytes:
    """Keyed digest of the packet's invariant identity."""
    h = hashlib.blake2b(digest_size=FINGERPRINT_BYTES, key=key[:64])
    for field in packet.invariant_fields():
        h.update(_encode_field(field))
    return h.digest()


def fingerprint(packet: Packet, key: bytes = b"") -> int:
    """The fingerprint as an int — convenient for sets and sampling."""
    return int.from_bytes(fingerprint_bytes(packet, key), "big")


class FingerprintSampler:
    """Hash-range packet sampling (Duffield–Grossglauser trajectory style).

    Both ends of a monitored path-segment agree on a secret ``key`` and a
    ``rate``; a packet is sampled iff its keyed fingerprint falls in the
    bottom ``rate`` fraction of the hash space.  Because the key is secret
    from intermediate routers, a faulty router cannot limit its attack to
    unmonitored packets (§5.2.1).  ``rate=1.0`` samples everything.
    """

    def __init__(self, rate: float = 1.0, key: bytes = b"sampling") -> None:
        if not (0.0 < rate <= 1.0):
            raise ValueError("sampling rate must be in (0, 1]")
        self.rate = rate
        self.key = key
        self._threshold = int(rate * (1 << (8 * FINGERPRINT_BYTES)))

    def sampled(self, packet: Packet) -> bool:
        return fingerprint(packet, self.key) < self._threshold

    def expected_fraction(self) -> float:
        return self.rate
