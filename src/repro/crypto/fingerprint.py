"""Packet fingerprints.

A fingerprint is a short one-way digest of a packet that is *stable along
the path*: it must be computed over the end-to-end invariant fields only,
excluding TTL and header checksum which correct routers rewrite hop-by-hop
(§7.4.2).  The paper's prototype uses UHASH; we use keyed BLAKE2b, which
gives the same interface properties (collision resistance, keyed so that
an adversary cannot engineer collisions against monitors).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from repro.net import Packet

FINGERPRINT_BYTES = 8  # 64-bit fingerprints, as in the prototype


def _encode_field(value) -> bytes:
    # NOTE: bool is checked before int because bool is an int subclass;
    # reordering would silently change every fingerprint.
    if isinstance(value, bytes):
        return b"b" + len(value).to_bytes(4, "big") + value
    if isinstance(value, str):
        raw = value.encode()
        return b"s" + len(raw).to_bytes(4, "big") + raw
    if isinstance(value, bool):
        return b"?" + bytes([value])
    if isinstance(value, int):
        raw = value.to_bytes(16, "big", signed=True)
        return b"i" + raw
    raise TypeError(f"cannot encode field of type {type(value)!r}")


@lru_cache(maxsize=8192)
def _encode_str(value: str) -> bytes:
    raw = value.encode()
    return b"s" + len(raw).to_bytes(4, "big") + raw


def _encode_fields(fields: tuple) -> bytes:
    """Concatenated :func:`_encode_field` over *fields* in one buffer.

    Byte-for-byte identical to encoding field-by-field; a single
    ``join`` + one hasher ``update`` beats ten small updates on the
    per-packet path.  Exact ``str``/``int``/``bytes`` take an inline
    fast path (strings — addresses, kinds, flow ids — recur across
    packets and are cached encoded); anything else, including bool and
    subclasses, goes through the generic encoder unchanged.
    """
    parts = []
    append = parts.append
    for value in fields:
        kind = type(value)
        if kind is str:
            append(_encode_str(value))
        elif kind is int:
            append(b"i" + value.to_bytes(16, "big", signed=True))
        elif kind is bytes:
            append(b"b" + len(value).to_bytes(4, "big") + value)
        else:
            append(_encode_field(value))
    return b"".join(parts)


#: Keyed hasher prototypes.  ``blake2b(key=...)`` runs a full key-block
#: compression on construction; ``copy()`` of a prepared prototype skips
#: it.  Monitors use a handful of distinct keys, so this stays tiny.
_HASHER_PROTOTYPES: dict = {}


def _hasher(key: bytes):
    proto = _HASHER_PROTOTYPES.get(key)
    if proto is None:
        proto = hashlib.blake2b(digest_size=FINGERPRINT_BYTES, key=key[:64])
        _HASHER_PROTOTYPES[key] = proto
    return proto.copy()


def fingerprint_bytes(packet: Packet, key: bytes = b"") -> bytes:
    """Keyed digest of the packet's invariant identity.

    The digest is cached on the packet, validated against its current
    invariant-field tuple: packets are fingerprinted at every monitor
    along the path (same key, same fields), but attacks and
    fragmentation mutate identity fields after construction, so a stale
    cache entry must never be served.
    """
    fields = packet.invariant_fields()
    cached = packet._fp_cache
    if cached is not None and cached[0] == key and cached[1] == fields:
        return cached[2]
    h = _hasher(key)
    h.update(_encode_fields(fields))
    digest = h.digest()
    packet._fp_cache = (key, fields, digest)
    return digest


def fingerprint(packet: Packet, key: bytes = b"") -> int:
    """The fingerprint as an int — convenient for sets and sampling."""
    return int.from_bytes(fingerprint_bytes(packet, key), "big")


class FingerprintSampler:
    """Hash-range packet sampling (Duffield–Grossglauser trajectory style).

    Both ends of a monitored path-segment agree on a secret ``key`` and a
    ``rate``; a packet is sampled iff its keyed fingerprint falls in the
    bottom ``rate`` fraction of the hash space.  Because the key is secret
    from intermediate routers, a faulty router cannot limit its attack to
    unmonitored packets (§5.2.1).  ``rate=1.0`` samples everything.
    """

    def __init__(self, rate: float = 1.0, key: bytes = b"sampling") -> None:
        if not (0.0 < rate <= 1.0):
            raise ValueError("sampling rate must be in (0, 1]")
        self.rate = rate
        self.key = key
        self._threshold = int(rate * (1 << (8 * FINGERPRINT_BYTES)))

    def sampled(self, packet: Packet) -> bool:
        return fingerprint(packet, self.key) < self._threshold

    def expected_fraction(self) -> float:
        return self.rate
