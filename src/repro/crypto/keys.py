"""Key distribution (§2.1.5).

The paper assumes "the administrative ability to assign and distribute
shared keys to sets of nearby routers" or a PKI.  We model both with a
deterministic derivation from an administrative master secret: pairwise
symmetric keys for MAC-based validation, and per-router signing keys for
the digital signatures Π2's consensus requires.

Only the infrastructure object can mint keys; adversary code in this
library never holds another router's key, so "forging" is structurally
impossible rather than merely discouraged.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Tuple


class KeyInfrastructure:
    """Derives and hands out keys; stands in for IKE / Diffie-Hellman."""

    def __init__(self, master_secret: bytes = b"repro-master") -> None:
        self._master = master_secret
        self._pair_cache: Dict[Tuple[str, str], bytes] = {}
        self._router_cache: Dict[str, bytes] = {}

    def _derive(self, label: bytes) -> bytes:
        return hmac.new(self._master, label, hashlib.sha256).digest()

    def pair_key(self, a: str, b: str) -> bytes:
        """Symmetric key shared by routers ``a`` and ``b`` (order-free)."""
        lo, hi = sorted((a, b))
        cache_key = (lo, hi)
        if cache_key not in self._pair_cache:
            self._pair_cache[cache_key] = self._derive(
                b"pair|" + lo.encode() + b"|" + hi.encode()
            )
        return self._pair_cache[cache_key]

    def group_key(self, members: Tuple[str, ...]) -> bytes:
        """Key shared by all routers of a path-segment."""
        label = b"group|" + b"|".join(m.encode() for m in sorted(members))
        return self._derive(label)

    def signing_key(self, router: str) -> bytes:
        """Private signing key for ``router`` (PKI stand-in).

        Verification uses the same key (MAC-as-signature); the library's
        trust model is enforced by *who is given the key object*, namely
        only the router's own protocol instance.
        """
        if router not in self._router_cache:
            self._router_cache[router] = self._derive(b"sign|" + router.encode())
        return self._router_cache[router]

    def sampling_key(self, a: str, b: str) -> bytes:
        """Secret hash-range sampling key for a monitored segment's ends."""
        lo, hi = sorted((a, b))
        return self._derive(b"sample|" + lo.encode() + b"|" + hi.encode())
