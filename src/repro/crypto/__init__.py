"""Cryptographic tools and key distribution (§2.1.5).

Real hash primitives (BLAKE2) over the packet's invariant identity, an
administratively seeded key infrastructure (pairwise secret keys and
per-router signing keys), HMAC-style signatures, and hash chains.  The
detection protocols need authenticity and integrity, not confidentiality
(§2.1.5 n.2); these modules provide exactly that surface.
"""

from repro.crypto.fingerprint import (
    fingerprint,
    fingerprint_bytes,
    FingerprintSampler,
)
from repro.crypto.keys import KeyInfrastructure
from repro.crypto.signatures import Signed, SignatureError, canonical_bytes
from repro.crypto.hashchain import HashChain

__all__ = [
    "fingerprint",
    "fingerprint_bytes",
    "FingerprintSampler",
    "KeyInfrastructure",
    "Signed",
    "SignatureError",
    "canonical_bytes",
    "HashChain",
]
