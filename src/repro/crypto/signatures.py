"""Signatures over protocol messages.

Π2 disseminates traffic information via consensus on *digitally signed*
summaries ("[x]_i indicates that x is digitally signed by i", Fig 5.1);
Πk+2 exchanges signed summaries between segment ends; Fatih floods signed
alerts.  We implement signature semantics with HMAC over a canonical
serialization: a value signed by router ``i`` verifies only under ``i``'s
key, and any mutation of the payload breaks verification.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
from dataclasses import dataclass, fields, is_dataclass
from typing import Any


class SignatureError(Exception):
    """A signature failed to verify."""


def canonical_bytes(obj: Any) -> bytes:
    """Deterministic serialization for signing.

    Supports the value shapes protocol messages are built from:
    primitives, bytes, tuples/lists, sets/frozensets (sorted), dicts
    (key-sorted) and dataclasses (field order).
    """
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"B1" if obj else b"B0"
    if isinstance(obj, int):
        return b"I" + str(obj).encode()
    if isinstance(obj, float):
        return b"F" + repr(obj).encode()
    if isinstance(obj, str):
        raw = obj.encode()
        return b"S" + str(len(raw)).encode() + b":" + raw
    if isinstance(obj, bytes):
        return b"Y" + str(len(obj)).encode() + b":" + obj
    if isinstance(obj, (tuple, list)):
        inner = b"".join(canonical_bytes(x) for x in obj)
        return b"L(" + inner + b")"
    if isinstance(obj, (set, frozenset)):
        parts = sorted(canonical_bytes(x) for x in obj)
        return b"E(" + b"".join(parts) + b")"
    if isinstance(obj, dict):
        parts = []
        for key in sorted(obj, key=lambda k: canonical_bytes(k)):
            parts.append(canonical_bytes(key) + b"=" + canonical_bytes(obj[key]))
        return b"D(" + b"".join(parts) + b")"
    if isinstance(obj, enum.Enum):
        return b"M" + canonical_bytes(type(obj).__name__) + canonical_bytes(obj.name)
    if is_dataclass(obj) and not isinstance(obj, type):
        parts = [canonical_bytes(type(obj).__name__)]
        for f in fields(obj):
            parts.append(canonical_bytes(getattr(obj, f.name)))
        return b"C(" + b"".join(parts) + b")"
    raise TypeError(f"cannot canonicalize {type(obj)!r} for signing")


def _mac(key: bytes, payload: Any) -> bytes:
    return hmac.new(key, canonical_bytes(payload), hashlib.sha256).digest()


@dataclass(frozen=True)
class Signed:
    """An immutable signed envelope: ``[payload]_signer``."""

    payload: Any
    signer: str
    mac: bytes

    @classmethod
    def sign(cls, payload: Any, signer: str, signing_key: bytes) -> "Signed":
        return cls(payload=payload, signer=signer,
                   mac=_mac(signing_key, (signer, payload)))

    def verify(self, signing_key: bytes) -> bool:
        expected = _mac(signing_key, (self.signer, self.payload))
        return hmac.compare_digest(expected, self.mac)

    def verify_or_raise(self, signing_key: bytes) -> Any:
        if not self.verify(signing_key):
            raise SignatureError(f"bad signature claimed by {self.signer!r}")
        return self.payload
