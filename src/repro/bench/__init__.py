"""``repro.bench`` — registered benchmark workloads and regression gates.

The ROADMAP's north star is a reproduction that runs "as fast as the
hardware allows"; this package is how that is *measured and locked in*:

* :mod:`repro.bench.workloads` — the registered workload catalogue
  (chi, pi2, pik2, fatih, tcp-heavy, adversary-heavy), each a thin
  wrapper over a registry experiment.
* :mod:`repro.bench.runner` — run workloads, record ``BENCH.json``
  history (schema ``repro.bench/v1``).
* :mod:`repro.bench.compare` — A/B comparison between two recorded
  runs; the CI ``bench-gate`` job fails when events/sec drops below a
  checked-in floor.
* :mod:`repro.bench.sweep` — distill a traced sweep directory into
  headline numbers (grown out of ``repro obs bench``).
* :mod:`repro.bench.cli` — ``python -m repro bench {run,compare,list}``.

Unlike ``repro.net``/``repro.core``, this package measures wall-clock
time by design and is therefore outside the DET lint scope.
"""

from repro.bench.compare import CompareReport, WorkloadComparison, compare_runs, load_run
from repro.bench.runner import (
    BENCH_SCHEMA,
    append_run,
    latest_run,
    load_history,
    run_suite,
    run_workload,
)
from repro.bench.sweep import build_sweep_bench
from repro.bench.workloads import SUITES, WORKLOADS, Workload, get_workload

__all__ = [
    "BENCH_SCHEMA",
    "CompareReport",
    "SUITES",
    "WORKLOADS",
    "Workload",
    "WorkloadComparison",
    "append_run",
    "build_sweep_bench",
    "compare_runs",
    "get_workload",
    "latest_run",
    "load_history",
    "load_run",
    "run_suite",
    "run_workload",
]
