"""The registered benchmark workload catalogue.

A workload is a named, parameterized wrapper over a registry experiment
(:mod:`repro.eval.registry`): the experiment supplies the scenario, the
workload fixes its parameters and repetition count per suite so every
bench run measures the same thing.  Seeded experiments vary the seed
across repetitions (rep *i* runs at ``seed=i``), keeping runs
deterministic while averaging over scenario variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Suite names, ordered cheapest first.  ``smoke`` is sized for a CI
#: gate job; ``full`` for local before/after measurements.
SUITES: Tuple[str, ...] = ("smoke", "full")


@dataclass(frozen=True)
class Workload:
    """One benchmark workload: experiment + fixed params + rep counts."""

    name: str
    experiment: str
    description: str
    params: Tuple[Tuple[str, object], ...] = ()
    smoke_reps: int = 2
    full_reps: int = 4
    seeded: bool = True

    def reps_for(self, suite: str) -> int:
        if suite == "smoke":
            return self.smoke_reps
        if suite == "full":
            return self.full_reps
        raise ValueError(f"unknown suite {suite!r}; known: "
                         f"{', '.join(SUITES)}")


WORKLOADS: Dict[str, Workload] = {}


def _register(workload: Workload) -> Workload:
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(WORKLOADS)}") from None


for _w in (
    Workload("chi", "chi",
             "χ detection on a droptail bottleneck (attack at 50 s)",
             smoke_reps=2, full_reps=3),
    Workload("pi2", "pi2_bench",
             "Π2 packet-plane run on a 6-router chain",
             smoke_reps=3, full_reps=6),
    Workload("pik2", "pik2_bench",
             "Πk+2 packet-plane run on a 6-router chain",
             smoke_reps=3, full_reps=6),
    Workload("fatih", "fig5_7",
             "Fatih attack/detect/reroute timeline on Abilene",
             smoke_reps=1, full_reps=1, seeded=False),
    Workload("tcp-heavy", "tcp_heavy",
             "many TCP sources + connection setup, congestion only",
             smoke_reps=1, full_reps=2),
    Workload("adversary-heavy", "adversary_heavy",
             "RED bottleneck with combined conditional-drop + SYN-drop",
             smoke_reps=1, full_reps=2),
    Workload("adversary-matrix", "attack_matrix",
             "one attack-matrix cell: Π2 scoring a dropping router "
             "placed by betweenness on Abilene",
             params=(("topology", "abilene"),
                     ("adversary.behavior", "drop"),
                     ("adversary.rate", 1.0),
                     ("placement.strategy", "max-betweenness")),
             smoke_reps=1, full_reps=2),
):
    _register(_w)
