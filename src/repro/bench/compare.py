"""A/B comparison of two recorded bench runs — the regression gate.

``compare_runs(base, new)`` ratios each workload's events/sec; the CI
``bench-gate`` job feeds a checked-in floor as *base* and a fresh smoke
run as *new* and fails the build when any ratio drops below
``--fail-below`` (0.9 = a >10% regression).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional

from repro.bench.runner import BENCH_SCHEMA, latest_run


@dataclass(frozen=True)
class WorkloadComparison:
    name: str
    base_events_per_s: float
    new_events_per_s: float

    @property
    def ratio(self) -> float:
        if self.base_events_per_s <= 0:
            return float("inf")
        return self.new_events_per_s / self.base_events_per_s


@dataclass
class CompareReport:
    rows: List[WorkloadComparison]
    missing: List[str]  # workloads in base but absent from new

    def failures(self, fail_below: float) -> List[WorkloadComparison]:
        return [r for r in self.rows if r.ratio < fail_below]

    def ok(self, fail_below: float) -> bool:
        return not self.failures(fail_below) and not self.missing

    def format(self, fail_below: Optional[float] = None) -> List[str]:
        width = max((len(r.name) for r in self.rows), default=8)
        lines = [f"{'workload':<{width}}  {'base ev/s':>12}  "
                 f"{'new ev/s':>12}  ratio"]
        for row in self.rows:
            verdict = ""
            if fail_below is not None:
                verdict = ("  FAIL" if row.ratio < fail_below else "  ok")
            lines.append(
                f"{row.name:<{width}}  {row.base_events_per_s:>12.0f}  "
                f"{row.new_events_per_s:>12.0f}  {row.ratio:5.2f}x"
                f"{verdict}")
        for name in self.missing:
            lines.append(f"{name:<{width}}  missing from the new run  FAIL")
        return lines


def load_run(path: str) -> dict:
    """Load one run entry from *path*.

    Accepts either a ``repro.bench/v1`` history (takes the latest run)
    or a bare run entry (a ``workloads`` mapping at top level) — the
    checked-in floor uses the latter so review diffs stay small.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if "runs" in data:
        schema = data.get("schema")
        if schema != BENCH_SCHEMA:
            raise ValueError(
                f"{path}: expected schema {BENCH_SCHEMA!r}, got {schema!r}")
        entry = latest_run(data)
        if entry is None:
            raise ValueError(f"{path}: history has no recorded runs")
        return entry
    if "workloads" not in data:
        raise ValueError(
            f"{path}: neither a {BENCH_SCHEMA} history nor a run entry "
            f"(no 'runs' or 'workloads' key)")
    return data


def compare_runs(base: dict, new: dict) -> CompareReport:
    """Compare every workload recorded in *base* against *new*.

    Workloads only present in *new* are ignored (adding a workload must
    not fail the gate); workloads missing from *new* are reported and
    fail it (a silently skipped workload is not a passing one).
    """
    base_workloads = base.get("workloads", {})
    new_workloads = new.get("workloads", {})
    rows = []
    missing = []
    for name in base_workloads:
        if name not in new_workloads:
            missing.append(name)
            continue
        rows.append(WorkloadComparison(
            name=name,
            base_events_per_s=float(
                base_workloads[name].get("events_per_s", 0.0)),
            new_events_per_s=float(
                new_workloads[name].get("events_per_s", 0.0)),
        ))
    return CompareReport(rows=rows, missing=missing)
