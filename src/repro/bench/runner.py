"""Run benchmark workloads and keep ``BENCH.json`` history.

``BENCH.json`` (schema ``repro.bench/v1``) is an append-only history:

.. code-block:: json

    {
      "schema": "repro.bench/v1",
      "runs": [
        {
          "suite": "smoke",
          "timestamp": "2026-08-08T12:00:00Z",
          "platform": {"python": "3.11.9", "machine": "x86_64"},
          "workloads": {
            "chi": {"experiment": "chi", "reps": 2, "wall_s": 3.1,
                    "sim_events": 480000, "events_per_s": 154000.0}
          }
        }
      ]
    }

Events are counted via :attr:`repro.net.events.Simulator.dispatched_total`
— a process-wide cumulative counter read as a delta around each run, so
the measured loop carries no instrumentation overhead (no recorder, no
trace taps).
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import time
from typing import Dict, List, Optional

from repro.bench.workloads import WORKLOADS, Workload, get_workload

BENCH_SCHEMA = "repro.bench/v1"


def run_workload(workload: Workload, reps: int) -> dict:
    """Run *workload* ``reps`` times; return its measured metrics."""
    # Imported here so ``repro bench list`` stays instant and the
    # experiment registry (plugins included) only loads when measuring.
    from repro.eval.registry import run_experiment
    from repro.net import Simulator

    wall_s = 0.0
    sim_events = 0
    for rep in range(reps):
        params = dict(workload.params)
        if workload.seeded:
            params["seed"] = rep
        before = Simulator.dispatched_total
        t0 = time.perf_counter()
        run_experiment(workload.experiment, params)
        wall_s += time.perf_counter() - t0
        sim_events += Simulator.dispatched_total - before
    return {
        "experiment": workload.experiment,
        "reps": reps,
        "wall_s": wall_s,
        "sim_events": sim_events,
        "events_per_s": (sim_events / wall_s) if wall_s > 0 else 0.0,
    }


def run_suite(suite: str = "smoke",
              workloads: Optional[List[str]] = None,
              reps: Optional[int] = None,
              progress=None) -> dict:
    """Run a suite (or an explicit workload subset) into one run entry.

    ``reps`` overrides every workload's per-suite repetition count;
    ``progress`` (if given) is called with one line per finished
    workload.
    """
    names = list(workloads) if workloads else list(WORKLOADS)
    entry: dict = {
        "suite": suite,
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "workloads": {},
    }
    for name in names:
        workload = get_workload(name)
        measured = run_workload(workload,
                                reps if reps is not None
                                else workload.reps_for(suite))
        entry["workloads"][name] = measured
        if progress is not None:
            progress(f"{name}: {measured['sim_events']} events in "
                     f"{measured['wall_s']:.2f} s "
                     f"({measured['events_per_s']:.0f}/s)")
    return entry


# -- history ----------------------------------------------------------------

def load_history(path: str) -> dict:
    """Load a ``BENCH.json`` history, or an empty one if missing."""
    if not os.path.exists(path):
        return {"schema": BENCH_SCHEMA, "runs": []}
    with open(path, "r", encoding="utf-8") as fh:
        history = json.load(fh)
    schema = history.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, got {schema!r}")
    history.setdefault("runs", [])
    return history


def append_run(path: str, entry: dict) -> dict:
    """Append one run entry to the history at *path*; return it."""
    history = load_history(path)
    history["runs"].append(entry)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(history, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return history


def latest_run(history: dict) -> Optional[dict]:
    runs = history.get("runs") or []
    return runs[-1] if runs else None


def format_run(entry: dict) -> List[str]:
    """Human-readable lines for one run entry."""
    lines = [f"suite: {entry.get('suite', '?')}  "
             f"({entry.get('timestamp', 'no timestamp')})"]
    workloads: Dict[str, dict] = entry.get("workloads", {})
    width = max((len(n) for n in workloads), default=0)
    for name, m in workloads.items():
        lines.append(
            f"  {name:<{width}}  {m['sim_events']:>9d} events  "
            f"{m['wall_s']:>7.2f} s  {m['events_per_s']:>10.0f} ev/s  "
            f"({m['reps']} rep{'s' if m['reps'] != 1 else ''})")
    return lines
