"""Distill a traced sweep directory into headline bench numbers.

Grown out of the removed ``repro obs bench`` command (the CLI entry is
now ``python -m repro bench sweep``): given a sweep directory produced
with ``--trace``, pull wall time from
the manifest telemetry, simulator events from the merged metric
snapshots, and emit the numbers the ROADMAP tracks.  The output keeps
the historical ``repro.obs.bench/v1`` schema so existing consumers of
``BENCH_obs.json`` keep parsing.
"""

from __future__ import annotations

import json
import os

from repro.obs.cli import summarize_paths

#: Schema of the sweep-distillation output (pre-dates ``repro.bench/v1``
#: and is kept for ``BENCH_obs.json`` compatibility).
SWEEP_BENCH_SCHEMA = "repro.obs.bench/v1"


def build_sweep_bench(sweep_dir: str) -> dict:
    """Headline benchmark numbers for a traced sweep directory."""
    summary = summarize_paths([sweep_dir])
    telemetry = summary.get("telemetry") or {}
    wall_s = float(telemetry.get("wall_s", 0.0))
    if wall_s <= 0.0:
        manifest_path = os.path.join(sweep_dir, "sweep.json")
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as fh:
                wall_s = float(json.load(fh).get("elapsed_s", 0.0))
    sim_events = 0
    events_metric = summary["metrics"].get("repro.net.sim.events")
    if events_metric:
        sim_events = int(events_metric.get("value", 0))
    cache = telemetry.get("cache", {})
    return {
        "schema": SWEEP_BENCH_SCHEMA,
        "sweep_dir": os.path.abspath(sweep_dir),
        "wall_s": wall_s,
        "sim_events": sim_events,
        "events_per_s": sim_events / wall_s if wall_s > 0 else 0.0,
        "cache_hit_rate": float(cache.get("hit_rate", 0.0)),
        "runs": telemetry.get("runs"),
    }
