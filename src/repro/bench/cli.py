"""``python -m repro bench``: run, compare and list benchmark workloads.

Subcommands:

``bench run [--suite smoke|full] [--workload NAME ...] [--out BENCH.json]``
    Run a suite (or an explicit workload subset), print per-workload
    events/sec, and append the run to the ``BENCH.json`` history.

``bench compare BASE NEW [--fail-below RATIO]``
    Ratio each workload's events/sec between two recorded runs (history
    files or bare run entries).  With ``--fail-below`` the exit status
    is 1 when any ratio falls under the threshold — the CI regression
    gate.

``bench list``
    The workload catalogue with per-suite repetition counts.

``bench sweep SWEEP_DIR [--out BENCH_obs.json]``
    Distill a traced sweep directory into headline numbers (wall time,
    simulator events, cache hit rate) — the successor of the removed
    ``repro obs bench`` command.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.bench.compare import compare_runs, load_run
from repro.bench.runner import append_run, format_run, run_suite
from repro.bench.workloads import SUITES, WORKLOADS


def add_bench_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench", help="run/compare registered benchmark workloads")
    bench_sub = parser.add_subparsers(dest="bench_command", required=True)

    run = bench_sub.add_parser(
        "run", help="run a workload suite and record BENCH.json history")
    run.add_argument("--suite", choices=SUITES, default="smoke",
                     help="which suite sizing to use (default: %(default)s)")
    run.add_argument("--workload", action="append", default=None,
                     metavar="NAME", dest="workloads",
                     help="run only this workload (repeatable; default: "
                          "all registered workloads)")
    run.add_argument("--reps", type=int, default=None,
                     help="override every workload's repetition count")
    run.add_argument("--out", default="BENCH.json",
                     help="history file to append to (default: %(default)s)")
    run.add_argument("--no-record", action="store_true",
                     help="print the numbers without touching --out")
    run.set_defaults(func=cmd_bench_run)

    compare = bench_sub.add_parser(
        "compare", help="A/B compare two recorded runs")
    compare.add_argument("base", metavar="BASE",
                         help="baseline BENCH.json (or bare run entry)")
    compare.add_argument("new", metavar="NEW",
                         help="candidate BENCH.json (or bare run entry)")
    compare.add_argument("--fail-below", type=float, default=None,
                         metavar="RATIO",
                         help="exit 1 if any workload's new/base "
                              "events-per-second ratio is below RATIO "
                              "(0.9 = fail on a >10%% regression)")
    compare.set_defaults(func=cmd_bench_compare)

    lister = bench_sub.add_parser("list", help="list registered workloads")
    lister.set_defaults(func=cmd_bench_list)

    sweep = bench_sub.add_parser(
        "sweep", help="distill a traced sweep dir into headline numbers")
    sweep.add_argument("sweep_dir", metavar="SWEEP_DIR")
    sweep.add_argument("--out", default="BENCH_obs.json",
                       help="output JSON path (default: %(default)s)")
    sweep.set_defaults(func=cmd_bench_sweep)


def cmd_bench_run(args: argparse.Namespace) -> int:
    unknown = [n for n in (args.workloads or []) if n not in WORKLOADS]
    if unknown:
        print(f"unknown workload(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(WORKLOADS)}", file=sys.stderr)
        return 2
    entry = run_suite(suite=args.suite, workloads=args.workloads,
                      reps=args.reps, progress=print)
    for line in format_run(entry):
        print(line)
    if not args.no_record:
        append_run(args.out, entry)
        print(f"recorded in {args.out}")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    try:
        base = load_run(args.base)
        new = load_run(args.new)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = compare_runs(base, new)
    for line in report.format(args.fail_below):
        print(line)
    if args.fail_below is not None and not report.ok(args.fail_below):
        failures = [r.name for r in report.failures(args.fail_below)]
        failures += report.missing
        print(f"FAIL: events/sec below {args.fail_below:.2f}x of the "
              f"baseline for: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def cmd_bench_sweep(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.bench.sweep import build_sweep_bench

    bench = build_sweep_bench(args.sweep_dir)
    parent = os.path.dirname(args.out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wall: {bench['wall_s']:.2f} s, sim events: "
          f"{bench['sim_events']} ({bench['events_per_s']:.0f}/s), "
          f"cache hit rate: {bench['cache_hit_rate']:.0%}")
    print(f"wrote {args.out}")
    return 0


def cmd_bench_list(args: argparse.Namespace) -> int:
    width = max(len(name) for name in WORKLOADS)
    lines: List[str] = []
    for name, workload in WORKLOADS.items():
        seeded = " [seeded]" if workload.seeded else ""
        lines.append(f"{name:<{width}}  {workload.description}{seeded}")
        lines.append(f"{'':<{width}}    experiment={workload.experiment} "
                     f"smoke×{workload.smoke_reps} full×{workload.full_reps}")
    print("\n".join(lines))
    return 0
