"""SecTrace: Secure Traceroute (§3.6).

The source validates traffic hop-by-hop: in round i it asks router rᵢ to
echo fingerprints of the monitored traffic; if validation up to rᵢ₋₁
succeeded but fails at rᵢ, the original paper has the source detect the
link ⟨rᵢ₋₁, rᵢ⟩.  §3.6 shows this violates accuracy: a faulty router
that starts attacking *after* it has been validated frames a downstream
pair of correct routers (Fig 3.7).  The implementation keeps that logic
so the flaw is reproducible, and reports ground-truth framing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.pathmodel import PathModel


@dataclass
class SecTraceOutcome:
    detected_link: Optional[Tuple[str, str]]
    rounds: int
    framing: bool  # detected link contains no faulty router
    validated_prefix: List[str]


def secure_traceroute(model: PathModel, packets_per_round: int = 10
                      ) -> SecTraceOutcome:
    """Run SecTrace rounds toward the destination.

    Round i (starting at 1) validates traffic between the source and
    path[i]: the source sends ``packets_per_round`` packets and the
    intermediate router reports fingerprints of what it saw.  Behaviours
    activate by round (``FaultyNode.active_from_round``), which is what
    lets a sly router wait until it has been certified.
    """
    path = model.path
    validated: List[str] = [path[0]]
    for i in range(1, len(path)):
        ok = True
        for p in range(packets_per_round):
            dropper, payload = model.send_data(i, ("probe", i, p), 0, i)
            if dropper is not None or payload != ("probe", i, p):
                ok = False
                break
        if ok:
            # The monitored router reports back through the same prefix;
            # suppression of the report also fails the round.
            suppressor = model.send_protocol(i, path[i], "report", i, 0)
            if suppressor is not None:
                ok = False
        if not ok:
            detected = (path[i - 1], path[i])
            framing = not any(model.is_faulty(r) for r in detected)
            return SecTraceOutcome(detected_link=detected, rounds=i,
                                   framing=framing,
                                   validated_prefix=validated)
        validated.append(path[i])
    return SecTraceOutcome(detected_link=None, rounds=len(path) - 1,
                           framing=False, validated_prefix=validated)
