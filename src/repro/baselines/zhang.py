"""ZHANG: per-interface statistical loss prediction (§3.12).

The closest prior to Protocol χ: a neighbour models the monitored
interface's offered load as a Poisson process, predicts the congestive
loss rate from queueing theory (M/M/1/K), and alarms when observed losses
significantly exceed the prediction.  Strong-complete and 2-accurate *if
the traffic really is Poisson* — the paper's (and our) point is that TCP
traffic is bursty, so the predicted threshold is wrong in both
directions: benign bursts overflow it (false positives) and a careful
attacker hides under it (false negatives).  Protocol χ replaces the
model with measurement.

Implemented as a per-round detector over the same
:class:`repro.core.chi.QueueTap` records χ uses, so the two can be
scored on identical traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.chi import TrafficRecord


def mm1k_loss_probability(arrival_rate: float, service_rate: float,
                          capacity_packets: int) -> float:
    """Blocking probability of an M/M/1/K queue.

    ``capacity_packets`` is K (buffer including the one in service).
    """
    if arrival_rate <= 0:
        return 0.0
    if service_rate <= 0:
        raise ValueError("service rate must be positive")
    if capacity_packets < 1:
        raise ValueError("capacity must be >= 1 packet")
    rho = arrival_rate / service_rate
    k = capacity_packets
    if abs(rho - 1.0) < 1e-9:
        return 1.0 / (k + 1)
    return (1.0 - rho) * rho ** k / (1.0 - rho ** (k + 1))


@dataclass
class ZhangVerdict:
    round_index: int
    arrivals: int
    observed_losses: int
    predicted_losses: float
    threshold: float
    alarmed: bool


class ZhangDetector:
    """Poisson-model loss-threshold detection for one monitored queue."""

    def __init__(self, bandwidth: float, queue_limit: int,
                 mean_packet_size: int = 1000, z_score: float = 3.0,
                 tau: float = 2.0) -> None:
        if bandwidth <= 0 or queue_limit <= 0:
            raise ValueError("bandwidth and queue limit must be positive")
        self.service_rate = bandwidth / mean_packet_size  # packets/s
        self.capacity_packets = max(1, queue_limit // mean_packet_size)
        self.z_score = z_score
        self.tau = tau
        self.verdicts: List[ZhangVerdict] = []

    def observe_round(self, round_index: int,
                      records_in: Sequence[TrafficRecord],
                      records_out: Sequence[TrafficRecord]) -> ZhangVerdict:
        arrivals = len(records_in)
        out_fps = {r.fp for r in records_out}
        losses = sum(1 for r in records_in if r.fp not in out_fps)
        arrival_rate = arrivals / self.tau
        p_loss = mm1k_loss_probability(arrival_rate, self.service_rate,
                                       self.capacity_packets)
        predicted = arrivals * p_loss
        # Poisson-count prediction interval.
        threshold = predicted + self.z_score * math.sqrt(max(predicted, 1.0))
        verdict = ZhangVerdict(
            round_index=round_index, arrivals=arrivals,
            observed_losses=losses, predicted_losses=predicted,
            threshold=threshold, alarmed=losses > threshold,
        )
        self.verdicts.append(verdict)
        return verdict

    def alarms(self) -> List[ZhangVerdict]:
        return [v for v in self.verdicts if v.alarmed]
