"""SATS: secure split assignment trajectory sampling (§3.9).

A centralized backend assigns every router *pair* a secret hash range
(split assignment); each router reports fingerprints of the packets it
forwards that fall in any of its own assigned ranges.  The backend —
which alone knows the full assignment — reconstructs trajectories and
suspects the path-segment between two observation points whenever the
upstream one saw traffic the downstream one missed.

Because a router only knows its own ranges, a compromised router cannot
restrict its attack to unmonitored packets — the same secrecy argument
as Πk+2's sampling, but with a *centralized* detector: the backend is a
trusted third party, which is the design point the paper's distributed
protocols remove.

Weak-complete and accurate with precision M (the distance between the
two observation points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core import PathOracle
from repro.crypto.fingerprint import FingerprintSampler, fingerprint
from repro.crypto.keys import KeyInfrastructure
from repro.net import MonitorTap, Network, Packet, Router

PathSegment = Tuple[str, ...]


@dataclass
class SATSSuspicion:
    segment: PathSegment
    missing: int
    pair: Tuple[str, str]


class SATSBackend(MonitorTap):
    """The centralized measurement system plus per-router reporting taps.

    One tap object observes the whole network (the simulator stands in
    for the routers' report channels); reports are segregated per router
    so a compromised router's *own* reports can be withheld or forged via
    ``misreporters`` without touching anyone else's.
    """

    def __init__(self, network: Network, oracle: PathOracle,
                 keys: Optional[KeyInfrastructure] = None,
                 rate: float = 0.25,
                 misreporters: Optional[Dict[str, object]] = None) -> None:
        self.network = network
        self.oracle = oracle
        self.keys = keys or KeyInfrastructure(b"sats-backend")
        self.rate = rate
        self.misreporters = misreporters or {}
        routers = network.topology.routers
        # Secret per-pair samplers; each router learns only its own.
        self._pair_samplers: Dict[Tuple[str, str], FingerprintSampler] = {}
        self._ranges_of: Dict[str, List[Tuple[str, str]]] = {
            r: [] for r in routers
        }
        for i, a in enumerate(routers):
            for b in routers[i + 1:]:
                sampler = FingerprintSampler(
                    rate=rate, key=self.keys.sampling_key(a, b))
                self._pair_samplers[(a, b)] = sampler
                self._ranges_of[a].append((a, b))
                self._ranges_of[b].append((a, b))
        # reports[router][pair] = {fingerprint: (src, dst)} forwarded in range
        self.reports: Dict[str, Dict[Tuple[str, str], Dict[int, Tuple[str, str]]]] = {
            r: {} for r in routers
        }

    # -- router-side reporting -------------------------------------------------
    def on_transmit(self, router: Router, out_nbr: str, packet: Packet,
                    time: float) -> None:
        name = router.name
        misreport = self.misreporters.get(name)
        if misreport == "silent":
            return
        fp = fingerprint(packet)
        for pair in self._ranges_of[name]:
            if self._pair_samplers[pair].sampled(packet):
                self.reports[name].setdefault(pair, {})[fp] = (
                    packet.src, packet.dst)

    # -- backend analysis --------------------------------------------------------
    def analyze(self) -> List[SATSSuspicion]:
        """Cross-check each pair's reports along the routing paths."""
        suspicions: List[SATSSuspicion] = []
        for (a, b), sampler in self._pair_samplers.items():
            for upstream, downstream in ((a, b), (b, a)):
                path = self.oracle.path(upstream, downstream)
                if path is None or len(path) < 2:
                    continue
                seen_up = self.reports[upstream].get((a, b), {})
                seen_down = self.reports[downstream].get((a, b), {})
                # Only packets routed through *both* observation points
                # (in order) are expected downstream; the backend knows
                # the routing, so it filters by each packet's path.
                missing = 0
                for fp, (src, dst) in seen_up.items():
                    packet_path = self.oracle.path(src, dst)
                    if packet_path is None:
                        continue
                    if upstream not in packet_path or (
                            downstream not in packet_path):
                        continue
                    up_idx = packet_path.index(upstream)
                    down_idx = packet_path.index(downstream)
                    if up_idx >= down_idx:
                        continue
                    if downstream != dst and fp not in seen_down:
                        missing += 1
                    elif downstream == dst:
                        # The terminal router consumes rather than
                        # forwards; its report cannot contain fp.  Skip.
                        continue
                if missing > 0:
                    suspicions.append(SATSSuspicion(
                        segment=tuple(path), missing=missing,
                        pair=(a, b),
                    ))
        return suspicions

    def suspected_routers(self) -> Set[str]:
        """Union of suspected segments (§3.9: an inconsistency between
        r_i and r_j suspects every router between them *including* both
        ends — the observation points themselves may be lying)."""
        out: Set[str] = set()
        for suspicion in self.analyze():
            out.update(suspicion.segment)
        return out

    def localized_routers(self) -> Set[str]:
        """Intersection of suspected segments: with enough pair coverage
        the common core pins down the culprit(s)."""
        suspicions = self.analyze()
        if not suspicions:
            return set()
        core = set(suspicions[0].segment)
        for suspicion in suspicions[1:]:
            core &= set(suspicion.segment)
        return core
