"""An abstract single-path network for probing-protocol baselines.

HERZBERG, PERLMAN, SecTrace and AWERBUCH all reason about one fixed path
⟨r0 … rn⟩ in a synchronous model.  :class:`PathModel` simulates message
walks along such a path with per-router Byzantine behaviours:

* dropping data packets (optionally only after some round — the
  attack-after-validation framing trick of Fig 3.7);
* dropping *acks or protocol messages* selectively by originator — the
  collusion primitive behind Fig 3.8;
* corrupting payloads.

The model is deliberately message-level (no queues, no timing): these
baselines' interesting properties are about *who can be framed and who
goes undetected*, which is a pure information-flow question.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Set, Tuple


@dataclass
class FaultyNode:
    """Byzantine behaviour of one router in the path model."""

    # Drop a data packet travelling forward?  (round, payload) -> bool
    drop_data: Optional[Callable[[int, object], bool]] = None
    # Drop a protocol message (ack/announcement) relayed backwards?
    # (round, origin, kind) -> bool
    drop_protocol: Optional[Callable[[int, str, str], bool]] = None
    # Corrupt a data packet: payload -> payload
    corrupt: Optional[Callable[[object], object]] = None
    # First round at which the node begins misbehaving.
    active_from_round: int = 0

    def drops_data(self, round_index: int, payload: object) -> bool:
        if round_index < self.active_from_round or self.drop_data is None:
            return False
        return self.drop_data(round_index, payload)

    def drops_protocol(self, round_index: int, origin: str, kind: str) -> bool:
        if round_index < self.active_from_round or self.drop_protocol is None:
            return False
        return self.drop_protocol(round_index, origin, kind)

    def corrupts(self, round_index: int, payload: object) -> object:
        if round_index < self.active_from_round or self.corrupt is None:
            return payload
        return self.corrupt(payload)


def always(round_index: int, *_: object) -> bool:
    return True


class PathModel:
    """A fixed path with per-node Byzantine behaviours."""

    def __init__(self, path: Sequence[str],
                 faulty: Optional[Dict[str, FaultyNode]] = None) -> None:
        if len(path) < 2:
            raise ValueError("a path needs at least two routers")
        if len(set(path)) != len(path):
            raise ValueError("path routers must be distinct")
        self.path = list(path)
        self.faulty = faulty or {}

    @property
    def source(self) -> str:
        return self.path[0]

    @property
    def destination(self) -> str:
        return self.path[-1]

    def index(self, router: str) -> int:
        return self.path.index(router)

    def is_faulty(self, router: str) -> bool:
        return router in self.faulty

    def faulty_set(self) -> Set[str]:
        return set(self.faulty)

    # -- message walks ---------------------------------------------------------
    def send_data(self, round_index: int, payload: object,
                  from_index: int = 0,
                  to_index: Optional[int] = None) -> Tuple[Optional[int], object]:
        """Walk a data packet forward.

        Transit routers (strictly between ``from_index`` and ``to_index``)
        may drop or corrupt it.  Returns (dropper_index, payload):
        ``dropper_index`` is None when the packet arrived at ``to_index``
        (default: the destination), otherwise the index of the router
        that swallowed it.
        """
        to_index = len(self.path) - 1 if to_index is None else to_index
        current = payload
        for j in range(from_index + 1, to_index):
            node = self.faulty.get(self.path[j])
            if node is None:
                continue
            if node.drops_data(round_index, current):
                return (j, current)
            current = node.corrupts(round_index, current)
        return (None, current)

    def send_protocol(self, round_index: int, origin: str, kind: str,
                      from_index: int, to_index: int) -> Optional[int]:
        """Walk a protocol message (ack, report) between two indices.

        Works in either direction; only routers strictly between the two
        endpoints can suppress it.  Returns None if delivered, else the
        index of the suppressing router.
        """
        step = 1 if to_index > from_index else -1
        for j in range(from_index + step, to_index, step):
            relay = self.path[j]
            if relay == origin:
                continue
            node = self.faulty.get(relay)
            if node is not None and node.drops_protocol(round_index, origin, kind):
                return j
        return None
