"""HSER: highly secure and efficient routing (§3.2).

Source routing + hop-by-hop authentication + per-hop timeouts + fault
announcements, validated *per path-segment nodes*: every router on the
path participates.  Equivalent in power to GOLDBERG's
OptimisticProtocol (§3.11).  Weak-complete, 2-accurate: only the source
learns the detection, but the detected link always contains a faulty
router — provided announcements themselves are authenticated, which is
what defeats the PERLMANd collusion (all intermediate routers take part,
so a prefix ack-suppressor implicates *itself*).

The model walks one message per round on the abstract
:class:`repro.baselines.pathmodel.PathModel` with a-priori reserved
buffers (HSER's device for making benign loss impossible — congestion is
out of scope by construction, the very assumption χ later removes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.pathmodel import PathModel


@dataclass
class HserOutcome:
    delivered: bool
    detected_link: Optional[Tuple[str, str]]
    announcements: List[Tuple[str, Tuple[str, str]]]  # (announcer, link)

    @property
    def framing(self) -> bool:
        return self.detected_link is not None and self.detected_link == ()


def hser_round(model: PathModel, round_index: int = 0,
               payload: object = "msg") -> HserOutcome:
    """One HSER delivery attempt with per-hop fault localization.

    Each router forwards, then waits (worst-case round trip to the
    destination) for an authenticated ack or a downstream fault
    announcement.  The router adjacent to the failure announces its
    downstream link to the source; because announcements are signed and
    travel through routers that have *already* proven they forward (they
    carried the data packet), a faulty router suppressing announcements
    implicates its own link.
    """
    path = model.path
    dropper, received = model.send_data(round_index, payload)
    corrupted = (dropper is None and received != payload)

    if dropper is None and not corrupted:
        # Destination acks; suppression of the ack is itself localized
        # because every hop expects it and announces on timeout.
        suppressor = model.send_protocol(round_index, path[-1], "ack",
                                         len(path) - 1, 0)
        if suppressor is None:
            return HserOutcome(True, None, [])
        link = (path[suppressor - 1], path[suppressor])
        return HserOutcome(True, link,
                           [(path[suppressor - 1], link)])

    if corrupted:
        # Hop-by-hop authentication: the first correct router after the
        # corrupter rejects the MAC, so the fault is localized to the
        # link it arrived on.  Find the corrupter by replaying prefixes.
        for i in range(1, len(path)):
            _, prefix_payload = model.send_data(round_index, payload, 0, i)
            if prefix_payload != payload:
                link = (path[i - 1], path[i])
                return HserOutcome(False, link, [(path[i], link)])
        link = (path[-2], path[-1])
        return HserOutcome(False, link, [(path[-1], link)])

    # Plain drop: the router just upstream of the dropper times out and
    # announces; the announcement travels the (working) prefix.
    link = (path[dropper - 1], path[dropper])
    announcer = path[dropper - 1]
    suppressor = model.send_protocol(round_index, announcer, "announce",
                                     dropper - 1, 0)
    announcements = []
    if suppressor is None:
        announcements.append((announcer, link))
    else:
        # The suppressor sits on the working prefix and just implicated
        # itself: its upstream neighbour times out on the announcement.
        link = (path[suppressor - 1], path[suppressor])
        announcements.append((path[suppressor - 1], link))
    return HserOutcome(False, link if not announcements else
                       announcements[-1][1], announcements)


def stealth_probe(model: PathModel, round_index: int = 0,
                  probes: int = 8) -> Tuple[bool, float]:
    """StealthProbing (§3.8): end-to-end availability over an IPsec-style
    channel.  Probes are indistinguishable from data (the model enforces
    this by construction: faulty nodes see only opaque payloads), so a
    dropper cannot spare them.  Returns (path_available, delivery_rate).
    No localization — the paper's point: "does not localize the problem".
    """
    delivered = 0
    for p in range(probes):
        dropper, payload = model.send_data(round_index, ("enc", p))
        if dropper is None and payload == ("enc", p):
            delivered += 1
    rate = delivered / probes
    return (rate > 0.5, rate)
