"""AWERBUCH: on-demand Byzantine-resilient routing via adaptive probing
(§3.5).

The source maintains a *probe list* of intermediate routers that must
acknowledge traffic.  When end-to-end validation fails, the source adds
the midpoint of the faulty interval to the probe list and retries —
a binary search that pins the fault to a single link in log(M) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.pathmodel import PathModel


@dataclass
class AwerbuchOutcome:
    detected_link: Optional[Tuple[str, str]]
    rounds: int
    probes_used: List[str]


def _interval_ok(model: PathModel, round_index: int, lo: int, hi: int,
                 packets: int) -> bool:
    """Does traffic flow cleanly between probe points lo and hi?"""
    for p in range(packets):
        dropper, payload = model.send_data(round_index, ("probe", p), lo, hi)
        if dropper is not None or payload != ("probe", p):
            return False
    # The downstream probe's signed report must reach the source.
    suppressor = model.send_protocol(round_index, model.path[hi],
                                     "probe-report", hi, 0)
    return suppressor is None


def awerbuch_binary_search(model: PathModel, packets_per_round: int = 10,
                           max_rounds: int = 64) -> AwerbuchOutcome:
    """Localize a faulty link by probe-list subdivision.

    Note the probing *always* measures source→probe intervals (reports
    travel back to the source), so unlike SecTrace the interval test is
    repeated every round — an attacker that misbehaves persistently is
    cornered in O(log M) rounds.
    """
    path = model.path
    lo, hi = 0, len(path) - 1
    probes: List[str] = []
    rounds = 0
    while hi - lo > 1 and rounds < max_rounds:
        rounds += 1
        mid = (lo + hi) // 2
        probes.append(path[mid])
        left_ok = _interval_ok(model, rounds, lo, mid, packets_per_round)
        if not left_ok:
            hi = mid
            continue
        right_ok = _interval_ok(model, rounds, mid, hi, packets_per_round)
        if not right_ok:
            lo = mid
            continue
        # Both halves pass in isolation.  If the full interval also
        # passes, the fault was intermittent; otherwise the probe node
        # itself must be the culprit (it forwards cleanly when it is an
        # interval *end* — it reports its own traffic — but drops as a
        # transit router), so its adjacent link is detected.
        if _interval_ok(model, rounds, lo, hi, packets_per_round):
            return AwerbuchOutcome(None, rounds, probes)
        return AwerbuchOutcome((path[mid], path[mid + 1]), rounds, probes)
    if hi - lo == 1:
        return AwerbuchOutcome((path[lo], path[hi]), rounds, probes)
    return AwerbuchOutcome(None, rounds, probes)
