"""Literature comparators (Chapter 3).

Faithful (and where the paper says so, faithfully *flawed*) models of the
prior detection protocols the dissertation reviews:

* :mod:`repro.baselines.watchers` — WATCHERS conservation-of-flow
  detection, including the consorting-router flaw of Fig 3.3 and its fix.
* :mod:`repro.baselines.herzberg` — end-to-end and hop-by-hop ack/timeout
  fault detection on a path (§3.3).
* :mod:`repro.baselines.perlman` — route-setup acks with Byzantine
  detection, and the PERLMANd per-hop-ack variant whose colluding-router
  inaccuracy (Fig 3.8) motivated the paper's specification work.
* :mod:`repro.baselines.sectrace` — Secure Traceroute, with the
  attack-after-validation framing scenario of Fig 3.7.
* :mod:`repro.baselines.awerbuch` — binary-search adaptive probing
  (log M rounds to a 2-segment).
* :mod:`repro.baselines.hser` — HSER (§3.2) per-segment-nodes validation
  and StealthProbing (§3.8) availability checks.
* :mod:`repro.baselines.zhang` — ZHANG (§3.12) Poisson-model loss
  thresholds, χ's closest prior.
* :mod:`repro.baselines.sats` — SATS (§3.9) centralized secret-split
  trajectory sampling.

These run on the shared abstract :mod:`repro.baselines.pathmodel` so the
comparison benches can sweep adversaries cheaply.
"""

from repro.baselines.pathmodel import FaultyNode, PathModel
from repro.baselines.watchers import WatchersProtocol, WatchersReport
from repro.baselines.herzberg import (
    herzberg_end_to_end,
    herzberg_hop_by_hop,
)
from repro.baselines.perlman import perlman_route_setup, perlman_per_hop_acks
from repro.baselines.sectrace import secure_traceroute
from repro.baselines.awerbuch import awerbuch_binary_search
from repro.baselines.hser import hser_round, stealth_probe
from repro.baselines.zhang import ZhangDetector, mm1k_loss_probability
from repro.baselines.sats import SATSBackend, SATSSuspicion

__all__ = [
    "FaultyNode",
    "PathModel",
    "WatchersProtocol",
    "WatchersReport",
    "herzberg_end_to_end",
    "herzberg_hop_by_hop",
    "perlman_route_setup",
    "perlman_per_hop_acks",
    "secure_traceroute",
    "awerbuch_binary_search",
    "hser_round",
    "stealth_probe",
    "ZhangDetector",
    "mm1k_loss_probability",
    "SATSBackend",
    "SATSSuspicion",
]
