"""WATCHERS: distributed conservation-of-flow monitoring (§3.1).

The final (Bradley et al.) WATCHERS: every router keeps, per neighbour
and per final destination, byte counters for traffic it originates (S),
transits (T) and terminates (D); counters are flooded each round and a
two-phase check runs at every router:

1. **Validation** — for each link the two ends' counter copies must
   agree.  A disagreement on *my own* link makes me detect my neighbour;
   a disagreement between my neighbour b and *its* neighbour c makes me
   skip b's CoF test, assuming b and c will detect each other.
2. **Conservation of flow** — a neighbour whose validated inflow and
   outflow differ by more than a threshold is detected.

That "assume they detect each other" step is the protocol's famous hole:
consorting faulty routers c and d can disagree with each other and then
simply *not* announce anything (Fig 3.3) — nobody runs CoF, nothing is
detected.  ``improved=True`` applies the dissertation's fix: a router
that observed the c–d inconsistency expects a ⟨c, d⟩ announcement within
the round and otherwise detects its own adjacent link.

The model is flow-level (byte counters over an agreed interval), which is
all WATCHERS itself uses; drops and lies are injected per router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.net import Topology

# (flow source, upstream, downstream, destination) -> bytes.  Keeping the
# source in the key realizes WATCHERS' S/T/D counter split: an entry is
# "S-like" at a router r when source == r, "D-like" when dest == r, and
# transit (T) otherwise.
Counter = Dict[Tuple[str, str, str, str], float]


@dataclass
class WatchersFlow:
    """One unidirectional traffic aggregate."""

    path: Tuple[str, ...]
    volume: float  # bytes over the measurement interval

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("flow path needs >= 2 routers")
        self.path = tuple(self.path)


@dataclass
class WatchersFault:
    """Byzantine behaviour of one router under WATCHERS."""

    # Fraction of transit volume this router silently drops, per flow.
    drop_fraction: Callable[[WatchersFlow], float] = lambda flow: 0.0
    # Rewrite of the router's claimed counters (protocol faulty / lying).
    misreport: Optional[Callable[[Counter], Counter]] = None
    # Does the router announce detections it is obliged to make?
    announces: bool = False  # faulty routers stay silent by default


@dataclass
class Detection:
    detector: str
    link: Tuple[str, str]
    phase: str  # "validation" | "cof" | "timeout-fix"


@dataclass
class WatchersReport:
    detections: List[Detection] = field(default_factory=list)
    skipped_cof: List[Tuple[str, str]] = field(default_factory=list)
    inconsistent_links: List[Tuple[str, str]] = field(default_factory=list)

    def detected_links(self) -> Set[Tuple[str, str]]:
        return {d.link for d in self.detections}

    def detects_router(self, router: str) -> bool:
        return any(router in d.link for d in self.detections)


class WatchersProtocol:
    """One WATCHERS round over a topology and a set of flows."""

    def __init__(
        self,
        topology: Topology,
        flows: Sequence[WatchersFlow],
        faulty: Optional[Dict[str, WatchersFault]] = None,
        threshold: float = 0.0,
        improved: bool = False,
    ) -> None:
        self.topology = topology
        self.flows = list(flows)
        self.faulty = faulty or {}
        self.threshold = threshold
        self.improved = improved
        for flow in self.flows:
            for a, b in zip(flow.path, flow.path[1:]):
                if not topology.has_link(a, b):
                    raise ValueError(f"flow uses missing link {a}->{b}")

    # -- ground truth -----------------------------------------------------------
    def true_counters(self) -> Dict[str, Counter]:
        """Each router's honest counters, given actual malicious drops."""
        counters: Dict[str, Counter] = {r: {} for r in self.topology.routers}
        for flow in self.flows:
            src_r, dest = flow.path[0], flow.path[-1]
            volume = flow.volume
            for i, (a, b) in enumerate(zip(flow.path, flow.path[1:])):
                # Transit drop at a (terminal routers assumed good, §2.1.4).
                if 0 < i < len(flow.path) - 1 and a in self.faulty:
                    volume *= 1.0 - self.faulty[a].drop_fraction(flow)
                key = (src_r, a, b, dest)
                counters[a][key] = counters[a].get(key, 0.0) + volume
                counters[b][key] = counters[b].get(key, 0.0) + volume
        return counters

    def claimed_counters(self) -> Dict[str, Counter]:
        truth = self.true_counters()
        claims: Dict[str, Counter] = {}
        for router, counter in truth.items():
            fault = self.faulty.get(router)
            if fault is not None and fault.misreport is not None:
                claims[router] = fault.misreport(dict(counter))
            else:
                claims[router] = dict(counter)
        return claims

    # -- the two-phase check ------------------------------------------------------
    def run_round(self) -> WatchersReport:
        claims = self.claimed_counters()
        report = WatchersReport()
        links = sorted({(a, b) for counter in claims.values()
                        for (_, a, b, _) in counter})
        # Which (a, b) pairs are inconsistent between their two ends?
        inconsistent: Set[Tuple[str, str]] = set()
        for (a, b) in links:
            keys = {k for k in claims[a] if k[1] == a and k[2] == b}
            keys |= {k for k in claims[b] if k[1] == a and k[2] == b}
            for key in keys:
                if abs(claims[a].get(key, 0.0) - claims[b].get(key, 0.0)) > 1e-9:
                    inconsistent.add((a, b))
                    break
        report.inconsistent_links = sorted(inconsistent)

        correct = [r for r in self.topology.routers if r not in self.faulty]
        announced: Set[Tuple[str, str]] = set()

        # Phase 1: validation.
        skip_cof: Dict[str, Set[str]] = {r: set() for r in self.topology.routers}
        for router in correct:
            for nbr in self.topology.neighbors(router):
                own_links = {(router, nbr), (nbr, router)}
                if own_links & inconsistent:
                    report.detections.append(
                        Detection(router, (router, nbr), "validation")
                    )
                    announced.add((router, nbr))
                    continue
                # Neighbour-vs-its-neighbour inconsistencies: skip b's CoF.
                for far in self.topology.neighbors(nbr):
                    if far == router:
                        continue
                    if {(nbr, far), (far, nbr)} & inconsistent:
                        skip_cof[router].add(nbr)
                        report.skipped_cof.append((router, nbr))
                        break

        # Phase 2: conservation of flow.
        for router in correct:
            for nbr in self.topology.neighbors(router):
                if nbr in skip_cof[router]:
                    continue
                if any(nbr in d.link and d.detector == router
                       for d in report.detections):
                    continue
                # Transit-only conservation of flow (Ib vs Ob, §3.1):
                # inflow excludes traffic terminating at nbr, outflow
                # excludes traffic nbr originated.
                inflow = sum(v for (s, a, b, d), v in claims[nbr].items()
                             if b == nbr and d != nbr)
                outflow = sum(v for (s, a, b, d), v in claims[nbr].items()
                              if a == nbr and s != nbr)
                if abs(inflow - outflow) > self.threshold + 1e-9:
                    report.detections.append(
                        Detection(router, (router, nbr), "cof")
                    )
                    announced.add((router, nbr))

        # The fix: an observed far-link inconsistency obliges its ends to
        # announce; silence convicts the nearer router.
        if self.improved:
            for router in correct:
                for nbr in self.topology.neighbors(router):
                    if nbr not in skip_cof[router]:
                        continue
                    expected = False
                    for far in self.topology.neighbors(nbr):
                        pair = {(nbr, far), (far, nbr)}
                        if not (pair & inconsistent):
                            continue
                        ends_announced = any(
                            d.link in ((nbr, far), (far, nbr))
                            for d in report.detections
                            if d.detector in (nbr, far)
                        )
                        if not ends_announced:
                            expected = True
                    if expected:
                        report.detections.append(
                            Detection(router, (router, nbr), "timeout-fix")
                        )
        return report
