"""HERZBERG: early detection of message forwarding faults (§3.3).

Single-message fault localization on a fixed path via acknowledgements
and timeouts.  Two variants from the paper:

* **end-to-end** — only the destination acks; every intermediate router
  times out waiting for an ack or a fault announcement from downstream
  and, on expiry, announces its downstream link as faulty.  Optimal
  communication, slow detection.
* **hop-by-hop** — every router acks to the source immediately; the
  source localizes the faulty link as the first gap in the ack prefix.
  Optimal time, heavy communication.

Both return the 2-segment (link) detected, or None if the message was
delivered cleanly — weak-complete, 2-accurate detectors in the paper's
terminology, under the assumption that protocol messages from correct
routers reach their targets (synchronous model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.pathmodel import PathModel


@dataclass
class HerzbergOutcome:
    delivered: bool
    detected_link: Optional[Tuple[str, str]]
    acks_sent: int
    rounds_to_detect: int  # abstract time units until localization


def herzberg_end_to_end(model: PathModel, round_index: int = 0,
                        payload: object = "msg") -> HerzbergOutcome:
    """The HERZBERG_end-to-end fault detector."""
    path = model.path
    dropper, _ = model.send_data(round_index, payload)
    if dropper is None:
        # Destination acks along the reverse path; a faulty router could
        # still suppress the ack, implicating itself.
        suppressor = model.send_protocol(round_index, path[-1], "ack",
                                         len(path) - 1, 0)
        if suppressor is None:
            return HerzbergOutcome(True, None, acks_sent=1,
                                   rounds_to_detect=0)
        # The first correct router upstream of the suppressor times out.
        return HerzbergOutcome(
            True, (path[suppressor - 1], path[suppressor]),
            acks_sent=1, rounds_to_detect=len(path),
        )
    # No ack flows at all; each router upstream of the dropper expects an
    # ack or announcement from its successor.  The router adjacent to the
    # dropper is the last to time out hopeful, and announces its link.
    link = (path[dropper - 1], path[dropper])
    return HerzbergOutcome(False, link, acks_sent=0,
                           rounds_to_detect=len(path))


def herzberg_hop_by_hop(model: PathModel, round_index: int = 0,
                        payload: object = "msg") -> HerzbergOutcome:
    """The HERZBERG_hop-by-hop fault detector.

    Every router that sees the message acks straight back to the source.
    Ack suppression by a faulty relay implicates the suppressor's link,
    because the source crosses-checks the contiguous ack prefix.
    """
    path = model.path
    dropper, _ = model.send_data(round_index, payload)
    reached = len(path) - 1 if dropper is None else dropper
    acked: List[bool] = [True]  # source trivially has its own copy
    for i in range(1, reached + 1):
        suppressor = model.send_protocol(round_index, path[i], "ack", i, 0)
        acked.append(suppressor is None)
    # First gap in the contiguous ack prefix localizes the fault.
    prefix_end = 0
    for i, ok in enumerate(acked):
        if not ok:
            break
        prefix_end = i
    delivered = dropper is None
    if delivered and all(acked) and prefix_end == len(path) - 1:
        return HerzbergOutcome(True, None, acks_sent=len(acked),
                               rounds_to_detect=0)
    link = (path[prefix_end], path[prefix_end + 1])
    return HerzbergOutcome(delivered, link, acks_sent=len(acked),
                           rounds_to_detect=1)
