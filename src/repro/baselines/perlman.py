"""PERLMAN: network layer protocols with Byzantine robustness (§3.7).

Two detectors from Perlman's thesis:

* :func:`perlman_route_setup` — the robust data-routing detector: signed
  route setup, per-route acks, end-to-end data ack.  On failure the
  *whole path* is suspected (precision = path length) and the source
  switches to a disjoint route.
* :func:`perlman_per_hop_acks` — the PERLMANd variant she *rejected*:
  every intermediate router acks every data packet to the source.  It is
  neither accurate nor complete: Fig 3.8's colluding routers b and e can
  frame the correct link ⟨c, d⟩.  We implement it exactly so the flaw is
  demonstrable (see ``tests/test_baselines.py`` and the Fig 3.8 bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.baselines.pathmodel import PathModel


@dataclass
class PerlmanOutcome:
    delivered: bool
    suspected: Optional[Tuple[str, ...]]  # path-segment the source suspects
    framing: bool = False  # ground truth: suspected segment is all-correct


def perlman_route_setup(model: PathModel, round_index: int = 0) -> PerlmanOutcome:
    """Signed route-setup + end-to-end data ack (weak-complete)."""
    path = model.path
    # Route setup must be acked by every intermediate router.
    for i in range(1, len(path) - 1):
        dropper, _ = model.send_data(round_index, ("setup", i), 0, i)
        if dropper is not None:
            return PerlmanOutcome(False, tuple(path), framing=False)
        suppressor = model.send_protocol(round_index, path[i], "setup-ack", i, 0)
        if suppressor is not None:
            return PerlmanOutcome(False, tuple(path))
    # Data packet + destination ack.
    dropper, _ = model.send_data(round_index, "data")
    if dropper is not None:
        return PerlmanOutcome(False, tuple(path))
    suppressor = model.send_protocol(round_index, path[-1], "data-ack",
                                     len(path) - 1, 0)
    if suppressor is not None:
        return PerlmanOutcome(False, tuple(path))
    return PerlmanOutcome(True, None)


def perlman_per_hop_acks(model: PathModel, round_index: int = 0) -> PerlmanOutcome:
    """PERLMANd: per-hop acks to the source; inaccurate under collusion.

    The source receives acks from a prefix of the path and concludes that
    the link just past the last acker is faulty.  With a faulty router
    *inside the acked prefix* selectively suppressing later acks, and a
    colluding dropper further downstream, this logic frames a correct
    link (Fig 3.8).
    """
    path = model.path
    dropper, _ = model.send_data(round_index, "data")
    reached = len(path) - 1 if dropper is None else dropper
    got_ack = [True]
    for i in range(1, len(path)):
        if i > reached:
            got_ack.append(False)
            continue
        suppressor = model.send_protocol(round_index, path[i], "ack", i, 0)
        got_ack.append(suppressor is None)
    if all(got_ack):
        return PerlmanOutcome(True, None)
    last = 0
    for i, ok in enumerate(got_ack):
        if not ok:
            break
        last = i
    suspected = (path[last], path[last + 1])
    framing = not any(model.is_faulty(r) for r in suspected)
    return PerlmanOutcome(dropper is None, suspected, framing=framing)
