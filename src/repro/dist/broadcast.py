"""Robust flooding (Perlman, §3.7).

Delivers a message to every correct router despite Byzantine routers that
suppress or alter it, relying only on the good-path condition: every pair
of correct routers is connected by a path of correct routers.  Each
router forwards a newly seen message on all links; a compromised router
may suppress (its ``on_control`` hook returns None) or alter the copy it
relays, but altered copies are detectable when the message is signed, and
suppression cannot cut correct routers off as long as a good path exists.

This primitive carries Π2's reliable broadcast of failure evidence and
Fatih's alert dissemination.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set

from repro.net.router import Network

_flood_ids = itertools.count(1)


@dataclass
class FloodResult:
    """Who received which copies of a flood."""

    origin: str
    delivered: Dict[str, Any] = field(default_factory=dict)  # router -> payload
    delivery_times: Dict[str, float] = field(default_factory=dict)

    def reached(self, router: str) -> bool:
        return router in self.delivered


def robust_flood(
    network: Network,
    origin: str,
    payload: Any,
    hop_delay: float = 0.01,
    on_deliver: Optional[Callable[[str, Any, float], None]] = None,
    verify: Optional[Callable[[Any], bool]] = None,
) -> FloodResult:
    """Flood ``payload`` from ``origin`` to all routers.

    ``verify`` (e.g. a signature check) is applied at each receiver; a
    copy failing verification is discarded *and not forwarded*, so an
    altered copy cannot crowd out the authentic one.  Returns a live
    :class:`FloodResult` populated as the simulation runs.
    """
    flood_id = next(_flood_ids)
    result = FloodResult(origin=origin)
    seen: Set[str] = set()

    def deliver(at: str, message: Any) -> None:
        now = network.sim.now
        if at in seen:
            return
        if verify is not None and not verify(message):
            return  # altered in transit: reject, wait for an honest copy
        seen.add(at)
        result.delivered[at] = message
        result.delivery_times[at] = now
        if on_deliver is not None:
            on_deliver(at, message, now)
        for nbr in network.routers[at].neighbors():
            relay(at, nbr, message)

    def relay(from_router: str, to_router: str, message: Any) -> None:
        comp = network.routers[from_router].compromise
        outgoing = message
        # Origin relays its own flood faithfully even if marked compromised
        # only in the traffic plane; protocol-faulty suppression applies to
        # transit relays.
        if comp is not None and from_router != origin:
            outgoing = comp.on_control(network.routers[from_router],
                                       from_router, to_router, message)
            if outgoing is None:
                return
        network.sim.schedule(hop_delay, deliver, to_router, outgoing)

    deliver(origin, payload)
    return result
