"""Distributed-systems substrate.

* :mod:`repro.dist.sync` — bounded-skew clocks and the agreed measurement
  rounds every protocol synchronizes on (§2.1.2).
* :mod:`repro.dist.broadcast` — Perlman-style robust flooding (§3.7).
* :mod:`repro.dist.consensus` — signed-messages Byzantine agreement used
  by Π2 to disseminate traffic summaries (Fig 5.1).
* :mod:`repro.dist.reconcile` — Appendix A's set reconciliation
  (characteristic polynomials over GF(p)) plus the Bloom-filter
  difference estimator of §2.4.1.
"""

from repro.dist.sync import ClockModel, RoundSchedule
from repro.dist.broadcast import FloodResult, robust_flood
from repro.dist.consensus import SignedConsensus, ConsensusResult, Equivocator
from repro.dist.reconcile import (
    CharacteristicPolynomialSet,
    reconcile,
    BloomFilter,
    bloom_difference_estimate,
)

__all__ = [
    "ClockModel",
    "RoundSchedule",
    "FloodResult",
    "robust_flood",
    "SignedConsensus",
    "ConsensusResult",
    "Equivocator",
    "CharacteristicPolynomialSet",
    "reconcile",
    "BloomFilter",
    "bloom_difference_estimate",
]
