"""Set reconciliation (Appendix A) and Bloom-filter difference estimation.

Conservation-of-content validation needs the *set difference* between the
fingerprints recorded at two routers.  Shipping whole sets is the naive
option; §2.4.1 discusses two cheaper ones, both implemented here:

* **Characteristic-polynomial reconciliation** (Minsky–Trachtenberg,
  Appendix A): each side evaluates the characteristic polynomial
  χ_S(z) = ∏_{x∈S}(z − x) of its fingerprint set at d+1 agreed sample
  points in GF(p).  The ratio χ_A(z)/χ_B(z) is a rational function whose
  numerator's roots are A∖B and denominator's roots are B∖A; it is
  recovered by rational interpolation (one linear solve) and factored by
  Cantor–Zassenhaus equal-degree splitting.  Communication is O(d) field
  elements — optimal in the size of the difference, independent of |A|.

* **Bloom filters**: constant-size, but only an *estimate* of the
  difference size, with exactly the accuracy caveats the paper notes
  ("a too-small filter can result in significant errors").

The field is GF(p) with p = 2^61 − 1 (Mersenne), comfortably above the
64-bit fingerprint space after reduction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

P = (1 << 61) - 1  # Mersenne prime 2^61 - 1

# -- polynomial arithmetic over GF(P); coefficients low-order first ----------


def _trim(poly: List[int]) -> List[int]:
    while len(poly) > 1 and poly[-1] == 0:
        poly.pop()
    return poly


def poly_eval(poly: Sequence[int], x: int) -> int:
    acc = 0
    for coeff in reversed(poly):
        acc = (acc * x + coeff) % P
    return acc


def poly_mul(a: Sequence[int], b: Sequence[int]) -> List[int]:
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % P
    return _trim(out)


def poly_divmod(a: Sequence[int], b: Sequence[int]) -> Tuple[List[int], List[int]]:
    a = list(a)
    b = _trim(list(b))
    if b == [0]:
        raise ZeroDivisionError("polynomial division by zero")
    deg_b = len(b) - 1
    inv_lead = pow(b[-1], P - 2, P)
    quot = [0] * max(1, len(a) - deg_b)
    rem = list(a)
    for i in range(len(a) - 1, deg_b - 1, -1):
        coeff = rem[i] * inv_lead % P
        if coeff == 0:
            continue
        quot[i - deg_b] = coeff
        for j in range(deg_b + 1):
            rem[i - deg_b + j] = (rem[i - deg_b + j] - coeff * b[j]) % P
    return _trim(quot), _trim(rem)


def poly_mod(a: Sequence[int], m: Sequence[int]) -> List[int]:
    return poly_divmod(a, m)[1]


def poly_gcd(a: Sequence[int], b: Sequence[int]) -> List[int]:
    a, b = _trim(list(a)), _trim(list(b))
    while b != [0]:
        a, b = b, poly_mod(a, b)
    if a != [0]:
        inv = pow(a[-1], P - 2, P)
        a = [c * inv % P for c in a]
    return a


def poly_powmod(base: Sequence[int], exponent: int, modulus: Sequence[int]) -> List[int]:
    result = [1]
    base = poly_mod(base, modulus)
    while exponent > 0:
        if exponent & 1:
            result = poly_mod(poly_mul(result, base), modulus)
        base = poly_mod(poly_mul(base, base), modulus)
        exponent >>= 1
    return result


def _find_roots(poly: List[int], rng: random.Random) -> List[int]:
    """All roots of a squarefree product of distinct linear factors."""
    poly = _trim(list(poly))
    degree = len(poly) - 1
    if degree == 0:
        return []
    if degree == 1:
        # c0 + c1 z = 0  ->  z = -c0/c1
        return [(-poly[0]) * pow(poly[1], P - 2, P) % P]
    # Keep only the part that splits into linear factors: gcd(z^P - z, f).
    zp = poly_powmod([0, 1], P, poly)  # z^P mod f
    zp_minus_z = _trim([(c - (1 if i == 1 else 0)) % P for i, c in
                        enumerate(zp + [0] * max(0, 2 - len(zp)))])
    linear_part = poly_gcd(zp_minus_z, poly)
    if len(linear_part) - 1 == 0:
        return []
    return _split_roots(linear_part, rng)


def _split_roots(poly: List[int], rng: random.Random) -> List[int]:
    degree = len(poly) - 1
    if degree == 0:
        return []
    if degree == 1:
        return [(-poly[0]) * pow(poly[1], P - 2, P) % P]
    while True:
        shift = rng.randrange(P)
        # g = gcd((z + shift)^((P-1)/2) - 1, f) splits the roots by
        # quadratic residuosity of (root + shift).
        probe = poly_powmod([shift, 1], (P - 1) // 2, poly)
        probe = _trim([(c - (1 if i == 0 else 0)) % P
                       for i, c in enumerate(probe)])
        g = poly_gcd(probe, poly)
        gdeg = len(g) - 1
        if 0 < gdeg < degree:
            rest, _ = poly_divmod(poly, g)
            return _split_roots(g, rng) + _split_roots(rest, rng)


# -- characteristic polynomial reconciliation --------------------------------


# Sample points live in a reserved band at the top of the field that
# element images can never reach; if the two overlapped, a fingerprint
# whose image equals a sample point would zero χ_S there and sink the
# whole reconciliation.
_SAMPLE_BAND = 1 << 16


def _to_field(value: int) -> int:
    """Map a fingerprint into [1, P - 1 - _SAMPLE_BAND]."""
    mapped = (value % (P - 1 - _SAMPLE_BAND)) + 1
    return mapped


def _sample_points(count: int) -> List[int]:
    # Fixed agreed points, descending from P - 1 through the reserved band.
    if count > _SAMPLE_BAND:
        raise ValueError("difference bound exceeds the reserved sample band")
    return [P - 1 - i for i in range(count)]


@dataclass
class CharacteristicPolynomialSet:
    """One side's reconciliation message: |S| and χ_S at the sample points."""

    size: int
    evaluations: Tuple[int, ...]

    @classmethod
    def from_set(cls, elements: Iterable[int], max_diff: int) -> "CharacteristicPolynomialSet":
        elems = [_to_field(x) for x in elements]
        points = _sample_points(max_diff + 1)
        evals = []
        for z in points:
            acc = 1
            for x in elems:
                acc = acc * ((z - x) % P) % P
            evals.append(acc)
        return cls(size=len(elems), evaluations=tuple(evals))


class ReconciliationError(Exception):
    """The difference exceeded the agreed bound (or inputs were corrupt)."""


def _solve_linear(matrix: List[List[int]], rhs: List[int]) -> Optional[List[int]]:
    """Gaussian elimination over GF(P).  Returns None if singular."""
    n = len(matrix)
    m = len(matrix[0]) if n else 0
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    rank = 0
    pivots = []
    for col in range(m):
        pivot = next((r for r in range(rank, n) if aug[r][col] % P != 0), None)
        if pivot is None:
            return None
        aug[rank], aug[pivot] = aug[pivot], aug[rank]
        inv = pow(aug[rank][col], P - 2, P)
        aug[rank] = [v * inv % P for v in aug[rank]]
        for r in range(n):
            if r != rank and aug[r][col] % P != 0:
                factor = aug[r][col]
                aug[r] = [(aug[r][c] - factor * aug[rank][c]) % P
                          for c in range(m + 1)]
        pivots.append(col)
        rank += 1
        if rank == n:
            break
    if rank < m:
        return None
    # Check consistency of remaining rows.
    for r in range(rank, n):
        if aug[r][m] % P != 0:
            return None
    solution = [0] * m
    for r, col in enumerate(pivots):
        solution[col] = aug[r][m] % P
    return solution


def reconcile(
    local: Set[int],
    remote: CharacteristicPolynomialSet,
    max_diff: int,
    seed: int = 0,
) -> Tuple[Set[int], Set[int]]:
    """Recover (remote_only, local_only) from ``remote``'s message.

    ``local`` holds raw fingerprints (any ints); ``remote`` was built with
    the same ``max_diff``.  Returns the differences **as field images**
    for remote-only elements and as original values for local-only
    elements whose field images matched.  Raises
    :exc:`ReconciliationError` when the true difference exceeds the bound.
    """
    rng = random.Random(seed)
    local_images = {}
    for value in local:
        local_images.setdefault(_to_field(value), value)
    points = _sample_points(max_diff + 1)
    if len(remote.evaluations) < len(points):
        raise ReconciliationError("remote message has too few evaluations")

    local_evals = []
    for z in points:
        acc = 1
        for x in local_images:
            acc = acc * ((z - x) % P) % P
        local_evals.append(acc)

    delta = remote.size - len(local_images)  # deg(P) - deg(Q)
    ratios = []
    for le, re in zip(local_evals, remote.evaluations):
        if le == 0 or re == 0:
            raise ReconciliationError("sample point collided with an element")
        ratios.append(re * pow(le, P - 2, P) % P)

    # Degrees: numerator d1 (remote-only), denominator d2 (local-only).
    # d1 - d2 = delta and d1 + d2 <= max_diff.  Try the largest consistent
    # sizes first and shrink until the interpolation is consistent.
    found = None
    top = max_diff
    while top >= abs(delta):
        if (top - abs(delta)) % 2 != 0:
            top -= 1
            continue
        d1 = (top + delta) // 2
        d2 = (top - delta) // 2
        if d1 < 0 or d2 < 0:
            break
        solution = _try_interpolate(ratios, points, d1, d2)
        if solution is not None:
            found = (d1, d2, solution)
            break
        top -= 2
    if found is None:
        raise ReconciliationError("difference exceeds agreed bound")
    d1, d2, (num, den) = found

    remote_only_images = _find_roots(num, rng)
    local_only_images = _find_roots(den, rng)
    if len(remote_only_images) != d1 or len(local_only_images) != d2:
        raise ReconciliationError("polynomial did not fully split; bound too small")
    local_only = {local_images[img] for img in local_only_images
                  if img in local_images}
    if len(local_only) != len(local_only_images):
        raise ReconciliationError("recovered local-only root not in local set")
    return set(remote_only_images), local_only


def _try_interpolate(
    ratios: List[int], points: List[int], d1: int, d2: int
) -> Optional[Tuple[List[int], List[int]]]:
    """Fit monic num (deg d1) / monic den (deg d2) to ratio samples."""
    unknowns = d1 + d2
    needed = unknowns + 1
    if needed > len(points):
        return None
    rows = []
    rhs = []
    for i in range(max(needed, unknowns) if unknowns else needed):
        if i >= len(points):
            break
        z, r = points[i], ratios[i]
        row = [pow(z, j, P) for j in range(d1)]
        row += [(-r * pow(z, j, P)) % P for j in range(d2)]
        rows.append(row)
        rhs.append((r * pow(z, d2, P) - pow(z, d1, P)) % P)
    if unknowns == 0:
        # Constant ratio must be exactly 1 everywhere.
        return ([1], [1]) if all(r == 1 for r in ratios) else None
    solution = _solve_linear(rows, rhs)
    if solution is None:
        return None
    num = solution[:d1] + [1]
    den = solution[d1:] + [1]
    # Verify against all remaining sample points.
    for z, r in zip(points, ratios):
        pv = poly_eval(num, z)
        qv = poly_eval(den, z)
        if qv == 0 or pv * pow(qv, P - 2, P) % P != r:
            return None
    if poly_gcd(num, den) != [1]:
        return None
    return (num, den)


# -- Bloom filters ------------------------------------------------------------


class BloomFilter:
    """A classic Bloom filter over integer fingerprints."""

    def __init__(self, bits: int = 8192, hashes: int = 4) -> None:
        if bits <= 0 or hashes <= 0:
            raise ValueError("bits and hashes must be positive")
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray((bits + 7) // 8)
        self.count = 0

    def _positions(self, value: int) -> List[int]:
        positions = []
        h = value & ((1 << 64) - 1)
        for i in range(self.hashes):
            h = (h * 0x9E3779B97F4A7C15 + i + 1) & ((1 << 64) - 1)
            h ^= h >> 29
            positions.append(h % self.bits)
        return positions

    def add(self, value: int) -> None:
        for pos in self._positions(value):
            self._array[pos // 8] |= 1 << (pos % 8)
        self.count += 1

    def to_bytes(self) -> bytes:
        return bytes(self._array)

    @classmethod
    def from_bytes(cls, data: bytes, bits: int, hashes: int,
                   count: int = 0) -> "BloomFilter":
        bloom = cls(bits=bits, hashes=hashes)
        if len(data) != len(bloom._array):
            raise ValueError("bloom payload length mismatch")
        bloom._array = bytearray(data)
        bloom.count = count
        return bloom

    def __contains__(self, value: int) -> bool:
        return all(self._array[p // 8] & (1 << (p % 8))
                   for p in self._positions(value))

    def bits_set(self) -> int:
        return sum(bin(b).count("1") for b in self._array)

    def estimated_cardinality(self) -> float:
        t = self.bits_set()
        if t >= self.bits:
            return float("inf")
        return -(self.bits / self.hashes) * math.log(1 - t / self.bits)

    def union_bits(self, other: "BloomFilter") -> int:
        self._check_compatible(other)
        return sum(bin(a | b).count("1")
                   for a, b in zip(self._array, other._array))

    def _check_compatible(self, other: "BloomFilter") -> None:
        if self.bits != other.bits or self.hashes != other.hashes:
            raise ValueError("incompatible Bloom filter parameters")


def bloom_difference_estimate(a: BloomFilter, b: BloomFilter) -> float:
    """Estimate |A Δ B| from two compatible filters.

    Uses cardinality estimates of A, B and A∪B:
    |A Δ B| = 2|A∪B| − |A| − |B|.  Accuracy degrades as the filters
    saturate — the caveat §2.4.1 raises against Bloom-based validation.
    """
    a._check_compatible(b)
    t_union = a.union_bits(b)
    if t_union >= a.bits:
        return float("inf")
    n_union = -(a.bits / a.hashes) * math.log(1 - t_union / a.bits)
    n_a = a.estimated_cardinality()
    n_b = b.estimated_cardinality()
    return max(0.0, 2 * n_union - n_a - n_b)
