"""Clock synchronization and measurement rounds.

Every detection protocol assumes a synchronous system: coarsely
synchronized clocks and bounded message delays (§2.1.2), typically
provided by NTP in the Fatih prototype (clocks "within a few
milliseconds", §5.3.1).  :class:`ClockModel` gives each router a bounded,
deterministic offset; :class:`RoundSchedule` carves time into the
agreed-upon validation intervals τ.

Traffic validation functions receive a ``skew_slack`` so that a packet
recorded just inside a round by one router and just outside by another is
not misread as a loss (§5.1.1: "TV could be written to accommodate a
small skew").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple


class ClockModel:
    """Per-router clock offsets bounded by ``epsilon`` seconds."""

    def __init__(self, epsilon: float = 0.002, seed: int = 0) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = epsilon
        self.seed = seed

    def offset(self, router: str) -> float:
        """Deterministic offset in [-epsilon, +epsilon] for ``router``."""
        if self.epsilon == 0:
            return 0.0
        digest = hashlib.sha256(
            f"{self.seed}|{router}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)  # [0,1)
        return (2.0 * unit - 1.0) * self.epsilon

    def local_time(self, router: str, true_time: float) -> float:
        return true_time + self.offset(router)

    def true_time(self, router: str, local: float) -> float:
        return local - self.offset(router)

    def max_skew(self) -> float:
        """Worst-case disagreement between any two routers."""
        return 2.0 * self.epsilon


@dataclass(frozen=True)
class RoundSchedule:
    """Agreed validation rounds: round k covers [start + k·tau, start + (k+1)·tau)."""

    tau: float = 5.0
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.tau <= 0:
            raise ValueError("round length tau must be positive")

    def round_of(self, time: float) -> int:
        return int((time - self.start) // self.tau)

    def interval(self, round_index: int) -> Tuple[float, float]:
        lo = self.start + round_index * self.tau
        return (lo, lo + self.tau)

    def round_end(self, round_index: int) -> float:
        return self.interval(round_index)[1]

    def contains(self, round_index: int, time: float) -> bool:
        lo, hi = self.interval(round_index)
        return lo <= time < hi
