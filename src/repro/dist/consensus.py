"""Signed-messages Byzantine agreement (Dolev–Strong) on traffic summaries.

Protocol Π2 requires that "all correct routers in π agree on the values
of info(i, π, τ)" (Fig 5.1), disseminated as digitally signed values.
With signatures, agreement among n members tolerating f faults needs only
f+1 rounds and no n > 3f bound — which is why the paper can run consensus
among the handful of routers of a path-segment.

This is a synchronous-round implementation (the system model *is*
synchronous, §2.1.2).  Each value travels with a signature chain; a value
is admissible in round r only if it carries r+1 valid signatures from
distinct members beginning with the originator.  A faulty originator can
therefore be *silent* or *equivocate*, but cannot forge; equivocation is
detected (two admissible values from one originator) and the originator's
slot decides to ⊥ with proof.

Faulty member behaviour is pluggable so tests can explore the adversary
space: silence, equivocation, selective relaying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.crypto.keys import KeyInfrastructure
from repro.crypto.signatures import Signed
from repro.obs import recorder


@dataclass(frozen=True)
class ChainedValue:
    """A signed value plus its relay chain.

    ``original`` is the originator's signature over the payload; ``chain``
    holds one relay signature per forwarding hop, each over the original
    signature's MAC (binding the relay to exactly this value).
    """

    original: Signed
    chain: Tuple[Signed, ...] = ()

    @property
    def origin(self) -> str:
        return self.original.signer

    def signers(self) -> Tuple[str, ...]:
        return (self.original.signer,) + tuple(s.signer for s in self.chain)

    def valid(self, keys: KeyInfrastructure, round_index: int) -> bool:
        """Admissible in ``round_index``: enough distinct valid signatures."""
        names = self.signers()
        if len(set(names)) != len(names):
            return False
        if len(names) < round_index + 1:
            return False
        if not self.original.verify(keys.signing_key(self.original.signer)):
            return False
        for link in self.chain:
            expected_payload = (self.original.signer, self.original.mac)
            if link.payload != expected_payload:
                return False
            if not link.verify(keys.signing_key(link.signer)):
                return False
        return True

    def extend(self, relayer: str, keys: KeyInfrastructure) -> "ChainedValue":
        link = Signed.sign((self.original.signer, self.original.mac),
                           relayer, keys.signing_key(relayer))
        return ChainedValue(self.original, self.chain + (link,))


@dataclass
class ConsensusResult:
    """What one correct member decided."""

    member: str
    values: Dict[str, Optional[Any]] = field(default_factory=dict)
    equivocators: Set[str] = field(default_factory=set)
    silent: Set[str] = field(default_factory=set)

    def agreed_vector(self) -> Tuple[Tuple[str, Any], ...]:
        return tuple(sorted(self.values.items(), key=lambda kv: kv[0]))


class FaultyBehavior:
    """Base protocol-faulty behaviour inside consensus: silent."""

    def initial_values(self, member: str, receivers: Sequence[str],
                       keys: KeyInfrastructure) -> Dict[str, List[ChainedValue]]:
        return {r: [] for r in receivers}

    def relay(self, member: str, receivers: Sequence[str],
              new_values: List[ChainedValue],
              keys: KeyInfrastructure) -> Dict[str, List[ChainedValue]]:
        return {r: [] for r in receivers}


class Silent(FaultyBehavior):
    """Sends nothing at all (pure omission)."""


class Equivocator(FaultyBehavior):
    """Sends value_a to the first half of receivers, value_b to the rest,
    and never relays others' values."""

    def __init__(self, value_a: Any, value_b: Any) -> None:
        self.value_a = value_a
        self.value_b = value_b

    def initial_values(self, member, receivers, keys):
        out: Dict[str, List[ChainedValue]] = {}
        half = len(receivers) // 2
        for i, receiver in enumerate(receivers):
            value = self.value_a if i < half else self.value_b
            signed = Signed.sign(value, member, keys.signing_key(member))
            out[receiver] = [ChainedValue(signed)]
        return out


class SignedConsensus:
    """One-shot vector consensus among the routers of a path-segment."""

    def __init__(self, members: Sequence[str], keys: KeyInfrastructure,
                 max_faults: Optional[int] = None) -> None:
        if len(members) != len(set(members)):
            raise ValueError("duplicate members")
        self.members = list(members)
        self.keys = keys
        self.f = max_faults if max_faults is not None else max(0, len(members) - 2)

    def run(
        self,
        inputs: Dict[str, Any],
        faulty: Optional[Dict[str, FaultyBehavior]] = None,
    ) -> Dict[str, ConsensusResult]:
        """Execute f+1 rounds; return each *correct* member's decision.

        ``inputs`` maps correct members to their payload values.  Members
        named in ``faulty`` follow their behaviour object instead.
        """
        faulty = faulty or {}
        correct = [m for m in self.members if m not in faulty]
        # accepted[m][origin] = set of distinct payload canonical forms seen
        accepted: Dict[str, Dict[str, Dict[bytes, ChainedValue]]] = {
            m: {} for m in correct
        }
        inbox: Dict[str, List[ChainedValue]] = {m: [] for m in self.members}

        def key_of(cv: ChainedValue) -> bytes:
            return cv.original.mac

        # Round 0: originators send their own signed value to everyone.
        outgoing: Dict[str, Dict[str, List[ChainedValue]]] = {}
        for member in self.members:
            receivers = [m for m in self.members if m != member]
            if member in faulty:
                outgoing[member] = faulty[member].initial_values(
                    member, receivers, self.keys
                )
            else:
                signed = Signed.sign(inputs.get(member), member,
                                     self.keys.signing_key(member))
                cv = ChainedValue(signed)
                outgoing[member] = {r: [cv] for r in receivers}
                # A member trivially accepts its own value.
                accepted[member].setdefault(member, {})[key_of(cv)] = cv

        for round_index in range(self.f + 1):
            # deliver
            for sender, per_receiver in outgoing.items():
                for receiver, values in per_receiver.items():
                    inbox[receiver].extend(values)
            outgoing = {m: {} for m in self.members}
            # correct members process and prepare relays
            for member in correct:
                newly: List[ChainedValue] = []
                for cv in inbox[member]:
                    if not cv.valid(self.keys, round_index):
                        continue
                    if member in cv.signers():
                        continue
                    slot = accepted[member].setdefault(cv.origin, {})
                    if key_of(cv) in slot:
                        continue
                    if len(slot) >= 2:
                        continue  # already have equivocation proof
                    slot[key_of(cv)] = cv
                    newly.append(cv)
                inbox[member] = []
                receivers = [m for m in self.members if m != member]
                outgoing[member] = {
                    r: [cv.extend(member, self.keys) for cv in newly]
                    for r in receivers
                }
            # faulty members may relay per their behaviour
            for member, behavior in faulty.items():
                receivers = [m for m in self.members if m != member]
                new_values = inbox[member]
                inbox[member] = []
                outgoing[member] = behavior.relay(
                    member, receivers, new_values, self.keys
                )

        results: Dict[str, ConsensusResult] = {}
        for member in correct:
            result = ConsensusResult(member=member)
            for origin in self.members:
                slot = accepted[member].get(origin, {})
                if len(slot) == 1:
                    (only,) = slot.values()
                    result.values[origin] = only.original.payload
                elif len(slot) >= 2:
                    result.values[origin] = None
                    result.equivocators.add(origin)
                else:
                    result.values[origin] = None
                    result.silent.add(origin)
            results[member] = result
        rec = recorder()
        if rec.active:
            metrics = rec.metrics
            metrics.counter("repro.dist.consensus.runs").inc()
            metrics.counter("repro.dist.consensus.rounds").inc(self.f + 1)
            metrics.histogram(
                "repro.dist.consensus.members").observe(len(self.members))
            equivocators: Set[str] = set()
            silent: Set[str] = set()
            for member in sorted(results):
                equivocators |= results[member].equivocators
                silent |= results[member].silent
            metrics.counter(
                "repro.dist.consensus.equivocators").inc(len(equivocators))
            metrics.counter(
                "repro.dist.consensus.silent").inc(len(silent))
        return results
