"""Command-line runner: regenerate any paper experiment from the shell.

    python -m repro list                 # what can be run
    python -m repro run fig5_7           # one experiment
    python -m repro run fig6_5 fig6_6    # several
    python -m repro run fig6_6 --seed 3  # at a non-default seed
    python -m repro run all              # everything (minutes)
    python -m repro sweep fig6_6 --seeds 8 --jobs 4 --out /tmp/sweep

``run`` prints the same series its bench writes to
``benchmarks/results/`` (see EXPERIMENTS.md for the paper-vs-measured
reading guide); ``sweep`` Monte-Carlos an experiment across derived
seeds/parameter grids with caching and JSON/CSV artifacts (see the
"Sweeps" section of EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List


def main(argv: List[str]) -> int:
    from repro.eval import registry
    from repro.sweep.cli import add_sweep_parser, cmd_sweep

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list runnable experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("names", nargs="+",
                     help="experiment names (or 'all')")
    run.add_argument("--seed", type=int, default=None,
                     help="random seed for experiments that accept one")
    add_sweep_parser(sub)
    args = parser.parse_args(argv)

    if args.command == "sweep":
        return cmd_sweep(args)

    if args.command == "list":
        width = max(len(name) for name in registry.names())
        for name, spec in registry.registry().items():
            seeded = " [seeded]" if spec.accepts_seed else ""
            print(f"{name:<{width}}  {spec.description}{seeded}")
        return 0

    names = (registry.names() if "all" in args.names else args.names)
    unknown = [n for n in names if n not in registry.names()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(registry.names())}", file=sys.stderr)
        return 2
    for name in names:
        spec = registry.get(name)
        params = {}
        if args.seed is not None:
            if spec.accepts_seed:
                params["seed"] = args.seed
            else:
                print(f"note: {name} takes no seed parameter; "
                      f"--seed ignored", file=sys.stderr)
        print(f"=== {name} ===")
        for line in spec.report(spec.run(**params)):
            print(line)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
