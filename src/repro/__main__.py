"""Command-line runner: regenerate any paper experiment from the shell.

    python -m repro list                 # what can be run
    python -m repro run fig5_7           # one experiment
    python -m repro run fig6_5 fig6_6    # several
    python -m repro run all              # everything (minutes)

Each experiment prints the same series its bench writes to
``benchmarks/results/`` (see EXPERIMENTS.md for the paper-vs-measured
reading guide).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List


def _scenario_report(result) -> List[str]:
    return [
        f"detected: {result.detected}",
        f"detection latency (rounds): {result.metrics.detection_latency_rounds}",
        f"false positive rounds: {result.metrics.false_positive_rounds}",
        f"drops: {result.total_drops} total, {result.congestive_drops} "
        f"congestive, {result.malicious_drops_truth} truly malicious",
    ]


def _pr_report(curve) -> List[str]:
    lines = [f"topology={curve.topology} protocol={curve.protocol}",
             "k  max  mean  median"]
    lines += [f"{k}  {mx:.0f}  {mean:.1f}  {med:.1f}"
              for k, mx, mean, med in curve.rows()]
    return lines


def _build_registry() -> Dict[str, Callable[[], List[str]]]:
    from repro.eval import experiments as ex

    def fatih() -> List[str]:
        r = ex.fig5_7_fatih()
        return [
            f"convergence: {r.convergence_time:.1f} s",
            f"attack at {r.attack_time:.1f} s, detected at "
            f"{r.first_detection:.1f} s, rerouted at {r.reroute_time:.1f} s",
            f"RTT {1000 * r.rtt_before:.1f} -> {1000 * r.rtt_after:.1f} ms",
            "suspected: " + "; ".join(" -> ".join(s)
                                      for s in r.suspected_segments),
        ]

    def threshold() -> List[str]:
        t = ex.chi_vs_static_threshold()
        lines = [f"benign max losses {t.benign_max_losses}; "
                 f"malicious total {t.total_malicious_drops}"]
        for th in t.thresholds:
            lines.append(
                f"  T={th:3d}: fp={t.static_fp_rounds[th]:3d} "
                f"detected={t.static_detected[th]!s:5s} "
                f"free drops={t.static_free_drops[th]}")
        lines.append(f"  chi: fp={t.chi_fp_rounds} "
                     f"detected={t.chi_detected}")
        return lines

    def response() -> List[str]:
        res = ex.response_strategy_ablation()
        return [f"{k}: unreachable={v.unreachable_pairs} "
                f"mean stretch={v.mean_stretch:.3f}"
                for k, v in res.items()]

    def ns() -> List[str]:
        return [f"rate {p.drop_rate:.2f}: detected={p.detected} "
                f"latency={p.detection_latency_rounds} "
                f"fp={p.false_positive_rounds}"
                for p in ex.fig6_3_ns_simulation()]

    def overhead() -> List[str]:
        return ex.state_overhead().rows()

    def demos() -> List[str]:
        out = []
        for demo in (ex.watchers_flaw_demo(), ex.perlman_collusion_demo(),
                     ex.sectrace_framing_demo(),
                     ex.awerbuch_localization_demo()):
            out.append(f"{demo.name}: {demo.values}")
        return out

    return {
        "fig5_2": lambda: _pr_report(ex.fig5_2_pr_pi2("ebone")),
        "fig5_4": lambda: _pr_report(ex.fig5_4_pr_pik2("ebone")),
        "overhead": overhead,
        "fig5_7": fatih,
        "fig6_3": ns,
        "fig6_5": lambda: _scenario_report(ex.fig6_5_no_attack()),
        "fig6_6": lambda: _scenario_report(ex.fig6_6_attack1()),
        "fig6_7": lambda: _scenario_report(ex.fig6_7_attack2()),
        "fig6_8": lambda: _scenario_report(ex.fig6_8_attack3()),
        "fig6_9": lambda: _scenario_report(ex.fig6_9_attack4()),
        "fig6_11": lambda: _scenario_report(ex.fig6_11_red_no_attack()),
        "fig6_12": lambda: _scenario_report(ex.fig6_12_red_attack1()),
        "fig6_13": lambda: _scenario_report(ex.fig6_13_red_attack2()),
        "fig6_14": lambda: _scenario_report(ex.fig6_14_red_attack3()),
        "fig6_15": lambda: _scenario_report(ex.fig6_15_red_attack4()),
        "fig6_16": lambda: _scenario_report(ex.fig6_16_red_attack5()),
        "threshold": threshold,
        "response": response,
        "baselines": demos,
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list runnable experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("names", nargs="+",
                     help="experiment names (or 'all')")
    args = parser.parse_args(argv)

    registry = _build_registry()
    if args.command == "list":
        for name in registry:
            print(name)
        return 0

    names = list(registry) if "all" in args.names else args.names
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"=== {name} ===")
        for line in registry[name]():
            print(line)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
