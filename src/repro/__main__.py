"""Command-line runner: regenerate any paper experiment from the shell.

    python -m repro list                 # what can be run
    python -m repro list --params        # with typed parameter tables
    python -m repro run fig5_7           # one experiment
    python -m repro run fig6_5 fig6_6    # several
    python -m repro run fig6_6 --seed 3  # at a non-default seed
    python -m repro run all              # everything (minutes)
    python -m repro sweep fig6_6 --seeds 8 --jobs 4 --out /tmp/sweep
    python -m repro sweep fig6_6 --seeds 8 --shard 0/2 --out /tmp/s0
    python -m repro merge /tmp/s0 /tmp/s1 --out /tmp/merged
    python -m repro sweep fig6_6 --seeds 8 --executor subprocess --shards 2
    python -m repro sweep fig6_6 --executor ssh --hosts fast:8,spare:2
    python -m repro lint                 # static invariant checks
    python -m repro lint --list-rules    # the rule catalogue
    python -m repro bench list           # benchmark workload catalogue
    python -m repro bench run --suite smoke --out BENCH.json
    python -m repro bench compare floor.json BENCH.json --fail-below 0.9

``run`` prints the same series its bench writes to
``benchmarks/results/`` (see EXPERIMENTS.md for the paper-vs-measured
reading guide); ``sweep`` Monte-Carlos an experiment across derived
seeds/parameter grids with caching, retry/timeout fault tolerance and
JSON/CSV artifacts; ``merge`` unions the outputs of ``--shard`` runs
back into one aggregate; ``--executor`` dispatches the shards itself —
locally, as supervised child processes, or across ssh hosts — and
auto-merges (see "Distributed sweeps" in EXPERIMENTS.md); ``lint`` runs
the repo's AST-based invariant checks — determinism in simulation code,
pickle safety across the sweep dispatch boundary, registry contracts —
(see "Static analysis" in EXPERIMENTS.md); ``bench`` runs the
registered benchmark workloads, records ``BENCH.json`` history and
A/B-compares runs for the CI regression gate (see "Benchmarking" in
README.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List


def main(argv: List[str]) -> int:
    from repro.analysis.cli import add_lint_parser, cmd_lint
    from repro.bench.cli import add_bench_parser
    from repro.eval import registry
    from repro.obs.cli import add_obs_parser
    from repro.sweep.cli import (
        add_merge_parser,
        add_sweep_parser,
        cmd_merge,
        cmd_sweep,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lister = sub.add_parser("list", help="list runnable experiments")
    lister.add_argument("--params", action="store_true",
                        help="also print each experiment's typed "
                             "parameter table")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("names", nargs="+",
                     help="experiment names (or 'all')")
    run.add_argument("--seed", type=int, default=None,
                     help="random seed for experiments that accept one")
    run.add_argument("--trace", default=None, metavar="DIR",
                     help="record a JSONL trace per experiment into DIR "
                          "(sim-domain events + metrics)")
    run.add_argument("--profile", action="store_true",
                     help="profile each run with cProfile and write "
                          "profile-<name>.json")
    run.add_argument("--profile-out", default=".", metavar="DIR",
                     help="directory for profile artifacts (default: .)")
    add_sweep_parser(sub)
    add_merge_parser(sub)
    add_lint_parser(sub)
    add_obs_parser(sub)
    add_bench_parser(sub)
    args = parser.parse_args(argv)

    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "merge":
        return cmd_merge(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command in ("obs", "bench"):
        return args.func(args)

    if args.command == "list":
        width = max(len(name) for name in registry.names())
        for name, spec in registry.registry().items():
            seeded = " [seeded]" if spec.accepts_seed else ""
            print(f"{name:<{width}}  {spec.description}{seeded}")
            if args.params:
                for param in spec.params:
                    print(f"{'':<{width}}    --param {param.describe()}")
        return 0

    names = (registry.names() if "all" in args.names else args.names)
    unknown = [n for n in names if n not in registry.names()]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(registry.names())}", file=sys.stderr)
        return 2
    for name in names:
        spec = registry.get(name)
        params = {}
        if args.seed is not None:
            if spec.accepts_seed:
                params["seed"] = args.seed
            else:
                print(f"note: {name} takes no seed parameter; "
                      f"--seed ignored", file=sys.stderr)
        print(f"=== {name} ===")
        rec = None
        if args.trace:
            import os

            from repro.obs import JsonlSink, recorder

            rec = recorder()
            rec.enable(JsonlSink(os.path.join(args.trace,
                                              f"{name}.jsonl")))
        try:
            if args.profile:
                import os

                from repro.obs.profile import (format_profile_lines,
                                               profile_call,
                                               write_profile)

                result, stats = profile_call(spec.run, **params)
                profile_path = write_profile(stats, os.path.join(
                    args.profile_out, f"profile-{name}.json"))
            else:
                result = spec.run(**params)
        finally:
            if rec is not None:
                rec.disable()
        for line in spec.report(result):
            print(line)
        if args.profile:
            for line in format_profile_lines(stats):
                print(line)
            print(f"wrote {profile_path}")
        print()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not our error.  Point
        # stdout at devnull so the interpreter's exit flush stays quiet.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
