"""Fig 6.7 — droptail attack 2: drop the selected flow at ≥90% queue."""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_7_attack2


def test_fig6_7_attack2(benchmark):
    result = benchmark.pedantic(fig6_7_attack2, rounds=1, iterations=1)
    save_series("fig6_7_attack2", scenario_lines(result))
    assert result.detected
    assert result.false_positives == 0
    assert result.malicious_drops_truth > 0
