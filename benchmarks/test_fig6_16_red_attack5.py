"""Fig 6.16 — RED attack 5: SYN-drop behind a RED bottleneck.

Byte-mode RED almost never drops 40-byte SYNs, so each malicious SYN
drop is near-impossible under the reconstructed probabilities — the
RED single-packet test fires after a couple of them.
"""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_16_red_attack5


def test_fig6_16_red_attack5(benchmark):
    result = benchmark.pedantic(fig6_16_red_attack5, rounds=1, iterations=1)
    lines = scenario_lines(result)
    lines.append(f"SYN retries forced: {result.extra.get('syn_retries')}")
    save_series("fig6_16_red_attack5", lines)
    assert result.detected
    assert result.false_positives == 0
    assert result.malicious_drops_truth <= 30
