"""Fig 6.11 — RED, no attack: hundreds of RED drops, zero alarms."""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_11_red_no_attack


def test_fig6_11_red_no_attack(benchmark):
    result = benchmark.pedantic(fig6_11_red_no_attack, rounds=1,
                                iterations=1)
    save_series("fig6_11_red_no_attack", scenario_lines(result))
    assert result.false_positives == 0
    assert not result.detected
    assert result.total_drops > 100  # RED was genuinely busy
