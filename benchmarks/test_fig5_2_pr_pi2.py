"""Fig 5.2 — |P_r| (max/mean/median) under Π2 vs AdjacentFault(k).

Paper shape: counts grow steeply with k, flatten once k+2 exceeds path
lengths, and stay far below the O(k · R^{k+1}) worst case; EBONE's
(smaller, sparser) counts sit well below Sprintlink's.
"""

from conftest import save_series

from repro.eval.experiments import fig5_2_pr_pi2


def test_fig5_2_pr_pi2(benchmark):
    sprint, ebone = benchmark.pedantic(
        lambda: (fig5_2_pr_pi2("sprintlink"), fig5_2_pr_pi2("ebone")),
        rounds=1, iterations=1,
    )
    lines = []
    for curve in (sprint, ebone):
        lines.append(f"# topology={curve.topology} protocol=Π2")
        lines.append("k  max  mean  median")
        for k, mx, mean, med in curve.rows():
            lines.append(f"{k}  {mx:.0f}  {mean:.1f}  {med:.1f}")
    save_series("fig5_2_pr_pi2", lines)

    for curve in (sprint, ebone):
        means = [row[2] for row in curve.rows()]
        # grows with k then saturates
        assert means[0] < means[2]
        assert means[-1] <= means[-2] * 1.05 + 1
        # far below the theoretical worst case O(k * R^(k+1))
        _, max_degree = (315, 45) if curve.topology == "sprintlink" else (87, 11)
        assert curve.series[2]["max"] < 2 * max_degree ** 3
    # EBONE is smaller across the board.
    for k in sprint.series:
        assert ebone.series[k]["mean"] < sprint.series[k]["mean"]
