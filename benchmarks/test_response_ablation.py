"""§2.4.3 ablation — response strategy: exclude segments vs routers.

The paper's rationale for segment exclusion: "less disruptive behavior".
Quantified on Abilene with the Fig 5.7 suspicions: segment exclusion
keeps every pair reachable at a small stretch; removing the suspected
router disconnects everything it terminates.
"""

from conftest import save_series

from repro.eval.experiments import response_strategy_ablation


def test_response_ablation(benchmark):
    results = benchmark.pedantic(response_strategy_ablation, rounds=1,
                                 iterations=1)
    lines = ["strategy  unreachable_pairs  mean_stretch  max_stretch"]
    for name, impact in results.items():
        lines.append(f"{name:8s}  {impact.unreachable_pairs:17d}  "
                     f"{impact.mean_stretch:12.3f}  "
                     f"{impact.max_stretch:.3f}")
    save_series("response_ablation", lines)

    assert results["segment"].unreachable_pairs == 0
    assert results["router"].unreachable_pairs > 0
    assert results["segment"].mean_stretch <= results["router"].mean_stretch
