"""Fig 6.5 — droptail, no attack: χ is silent through real congestion."""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_5_no_attack


def test_fig6_5_no_attack(benchmark):
    result = benchmark.pedantic(fig6_5_no_attack, rounds=1, iterations=1)
    save_series("fig6_5_no_attack", scenario_lines(result))
    assert result.false_positives == 0
    assert result.congestive_drops > 0  # congestion genuinely happened
    assert not result.detected
