"""Sampling-rate ablation (§5.2.1).

Πk+2's ends can agree on a secret hash range and record only a fraction
of the traffic.  State shrinks linearly with the rate; an attacker who
cannot tell which packets are monitored keeps getting caught (only the
evidence per round shrinks).
"""

from conftest import save_series

from repro.core.pik2 import PiK2Config, ProtocolPiK2
from repro.core.segments import monitored_segments_pik2
from repro.core.summaries import PathOracle, SegmentMonitor
from repro.crypto.fingerprint import FingerprintSampler
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.net.adversary import DropFlowAttack
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import chain
from repro.net.traffic import CBRSource


def run_rate(rate: float):
    keys = KeyInfrastructure()
    net = Network(chain(5))
    paths = install_static_routes(net)
    schedule = RoundSchedule(tau=1.0)
    segments = set().union(*monitored_segments_pik2(
        [tuple(p) for p in paths.values()], k=1).values())
    samplers = None
    if rate < 1.0:
        samplers = {seg: FingerprintSampler(
            rate=rate, key=keys.sampling_key(seg[0], seg[-1]))
            for seg in segments}
    monitor = SegmentMonitor(net, PathOracle(paths), schedule,
                             samplers=samplers)
    net.add_tap(monitor)
    protocol = ProtocolPiK2(net, monitor, segments, keys, schedule,
                            config=PiK2Config())
    protocol.schedule_rounds(0, 8)
    CBRSource(net, "r1", "r5", "f1", rate_bps=800_000, duration=8.0)
    net.run(4.0)
    net.routers["r3"].compromise = DropFlowAttack(["f1"], fraction=0.3,
                                                  seed=1)
    peak_state = 0
    for step in range(4, 12):
        net.run(float(step + 1))
        peak_state = max(peak_state, monitor.state_units("r1"))
    detected = any("r3" in s for s in
                   protocol.states["r1"].suspected_segments())
    return detected, peak_state


def test_sampling_ablation(benchmark):
    rates = (1.0, 0.5, 0.25, 0.1)
    results = benchmark.pedantic(
        lambda: {rate: run_rate(rate) for rate in rates},
        rounds=1, iterations=1,
    )
    lines = ["rate  detected  peak_state_units(r1)"]
    for rate, (detected, state) in results.items():
        lines.append(f"{rate:4.2f}  {detected!s:8s}  {state}")
    save_series("sampling_ablation", lines)

    # Detection survives down to 10% sampling (the attacker cannot dodge
    # the secret hash range), while state scales down with the rate.
    assert all(detected for detected, _ in results.values())
    states = [results[rate][1] for rate in rates]
    assert states[-1] < states[0] / 4
