"""Fig 6.9 — droptail attack 4: SYN-drop a connecting host.

A handful of 40-byte drops cripples the victim (3 s+ connection setups)
yet χ's single-loss test pins them immediately.
"""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_9_attack4


def test_fig6_9_attack4(benchmark):
    result = benchmark.pedantic(fig6_9_attack4, rounds=1, iterations=1)
    lines = scenario_lines(result)
    lines.append(f"SYN retries forced: {result.extra.get('syn_retries')}")
    lines.append(f"mean setup time: {result.extra.get('mean_setup_time')}")
    save_series("fig6_9_attack4", lines)
    assert result.detected
    assert result.false_positives == 0
    # Tiny attack: a few packets, disproportionate damage.
    assert result.malicious_drops_truth <= 20
    assert result.extra.get("syn_retries", 0) >= 1
