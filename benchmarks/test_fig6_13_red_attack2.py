"""Fig 6.13 — RED attack 2: threshold 54 kB (rarer, subtler firing)."""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_13_red_attack2


def test_fig6_13_red_attack2(benchmark):
    result = benchmark.pedantic(fig6_13_red_attack2, rounds=1, iterations=1)
    save_series("fig6_13_red_attack2", scenario_lines(result))
    assert result.detected
    assert result.false_positives == 0
    # Subtler than attack 1: fewer malicious drops before detection.
    assert result.malicious_drops_truth < 100
