"""§2.4.1 ablation — summary exchange bandwidth vs detection power.

The paper discusses three ways to communicate content summaries: full
fingerprint sets, characteristic-polynomial set reconciliation
(optimal-bandwidth, Appendix A), and Bloom filters (constant size,
approximate).  This bench runs the same Πk+2 deployment with each codec
on the same attack and compares wire bytes and detection.
"""

from conftest import save_series

from repro.core.pik2 import PiK2Config, ProtocolPiK2
from repro.core.segments import monitored_segments_pik2
from repro.core.summaries import PathOracle, SegmentMonitor
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.net.adversary import DropFlowAttack
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import chain
from repro.net.traffic import CBRSource


def run_codec(codec: str):
    net = Network(chain(5))
    paths = install_static_routes(net)
    monitor = SegmentMonitor(net, PathOracle(paths), RoundSchedule(tau=1.0))
    net.add_tap(monitor)
    segments = set().union(*monitored_segments_pik2(
        [tuple(p) for p in paths.values()], k=1).values())
    protocol = ProtocolPiK2(
        net, monitor, segments, KeyInfrastructure(), RoundSchedule(tau=1.0),
        config=PiK2Config(codec=codec, codec_max_diff=12,
                          codec_bloom_bits=2048),
    )
    protocol.schedule_rounds(0, 5)
    CBRSource(net, "r1", "r5", "f1", rate_bps=800_000, duration=6.0)
    net.routers["r3"].compromise = DropFlowAttack(["f1"], fraction=0.1,
                                                  seed=1)
    net.run(9.0)
    detected = any("r3" in seg
                   for seg in protocol.states["r1"].suspected_segments())
    return protocol.exchange_bytes, detected


def test_codec_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {codec: run_codec(codec)
                 for codec in ("full", "polynomial", "bloom")},
        rounds=1, iterations=1,
    )
    lines = ["codec       wire_bytes  detected"]
    for codec, (wire, detected) in results.items():
        lines.append(f"{codec:10s}  {wire:10d}  {detected}")
    save_series("codec_ablation", lines)

    # All codecs detect; polynomial is the bandwidth winner.
    assert all(detected for _, detected in results.values())
    full_bytes = results["full"][0]
    assert results["polynomial"][0] < full_bytes / 2
    assert results["bloom"][0] < full_bytes
