"""Fig 5.4 — |P_r| under Πk+2: far smaller than Π2, saturating near 2N.

Paper numbers for Sprintlink at AdjacentFault(7): ~616 mean / 626 max
segments per router — two orders of magnitude below WATCHERS state.
"""

import pytest
from conftest import save_series

from repro.eval.experiments import fig5_2_pr_pi2, fig5_4_pr_pik2


def test_fig5_4_pr_pik2(benchmark):
    sprint, ebone = benchmark.pedantic(
        lambda: (fig5_4_pr_pik2("sprintlink"), fig5_4_pr_pik2("ebone")),
        rounds=1, iterations=1,
    )
    lines = []
    for curve in (sprint, ebone):
        lines.append(f"# topology={curve.topology} protocol=Πk+2")
        lines.append("k  max  mean  median")
        for k, mx, mean, med in curve.rows():
            lines.append(f"{k}  {mx:.0f}  {mean:.1f}  {med:.1f}")
    save_series("fig5_4_pr_pik2", lines)

    # Saturates near 2·(N-1): a router ends at most two segments per peer.
    assert sprint.series[7]["max"] <= 2 * 314
    assert sprint.series[7]["mean"] == pytest.approx(616, rel=0.15)
    # Πk+2 is much cheaper than Π2 at the same k.
    pi2 = fig5_2_pr_pi2("sprintlink", ks=(2,))
    assert sprint.series[2]["mean"] < pi2.series[2]["mean"] / 1.5
