"""Fig 5.7 — Fatih in progress on Abilene.

Paper timeline: convergence ≈ 55 s; attack at ≈ 117 s; detection within
one 5 s validation round (~3 s); reroute after the OSPF delay/hold
timers; New York <-> Sunnyvale RTT steps from ~50 ms to ~56 ms; every
suspected 3-segment contains Kansas City.
"""

import pytest
from conftest import save_series

from repro.eval.experiments import fig5_7_fatih


def test_fig5_7_fatih(benchmark):
    result = benchmark.pedantic(fig5_7_fatih, rounds=1, iterations=1)
    save_series("fig5_7_fatih", [
        f"convergence: {result.convergence_time:.1f} s (paper ~55 s)",
        f"attack at: {result.attack_time:.1f} s (paper ~117 s)",
        f"first detection: {result.first_detection:.1f} s "
        f"(+{result.detection_latency:.1f} s; paper ~+3 s)",
        f"reroute: {result.reroute_time:.2f} s "
        f"(+{result.response_latency:.1f} s; paper ~+15-18 s)",
        f"RTT before: {1000 * result.rtt_before:.1f} ms (paper ~50 ms)",
        f"RTT after: {1000 * result.rtt_after:.1f} ms (paper ~56 ms)",
        "suspected segments:",
        *("  " + " -> ".join(seg) for seg in result.suspected_segments),
    ])

    assert 40 <= result.convergence_time <= 70
    assert result.first_detection is not None
    assert result.detection_latency <= 6.0  # within ~one tau + settle
    assert result.reroute_time > result.first_detection
    assert result.response_latency <= 20.0
    # RTT steps up by roughly the 3 ms one-way difference (6 ms RTT).
    assert 1000 * result.rtt_before == pytest.approx(50, abs=4)
    assert 1000 * result.rtt_after == pytest.approx(56, abs=4)
    assert result.rtt_after > result.rtt_before
    # 2-accuracy of the response: only KC-containing segments excluded.
    assert result.suspected_segments
    assert all("KansasCity" in seg for seg in result.suspected_segments)
