"""Shared helpers for the per-figure benchmark harness.

Each bench regenerates one paper table/figure via
:mod:`repro.eval.experiments`, asserts the paper's qualitative shape
(who wins, where the crossover is), and writes the regenerated series to
``benchmarks/results/<name>.txt`` so the numbers can be read against the
original figure (see EXPERIMENTS.md).
"""

import os
from typing import Iterable

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_series(name: str, lines: Iterable[str]) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        for line in lines:
            handle.write(str(line) + "\n")


def scenario_lines(result) -> list:
    lines = [
        f"scenario: {result.name}",
        f"detected: {result.detected}",
        f"detection latency (rounds): "
        f"{result.metrics.detection_latency_rounds}",
        f"false positive rounds: {result.metrics.false_positive_rounds}",
        f"total drops seen: {result.total_drops} "
        f"(congestive {result.congestive_drops}, "
        f"candidates {result.candidate_drops})",
        f"ground-truth malicious drops: {result.malicious_drops_truth}",
        "round  drops  candidates  confidence  alarmed",
    ]
    for row in result.rounds:
        lines.append("%5d  %5d  %10d  %10.4f  %s" % row)
    return lines
