"""Fig 3.1/3.3 — WATCHERS: detection power and the consorting hole."""

from conftest import save_series

from repro.eval.experiments import watchers_flaw_demo


def test_watchers_flaw(benchmark):
    demo = benchmark.pedantic(watchers_flaw_demo, rounds=1, iterations=1)
    save_series("watchers_flaw", [
        f"{k}: {v}" for k, v in demo.values.items()
    ])
    assert demo.values["original_detections"] == []
    assert not demo.values["original_detects_attacker"]
    assert demo.values["fixed_detects_attacker"]
