"""Fig 6.3 — NS-style simulation sweep of χ across attack intensities.

Paper shape: no false positives without an attack; detection at every
non-zero drop rate, faster/stronger as the rate grows.
"""

from conftest import save_series

from repro.eval.experiments import fig6_3_ns_simulation


def test_fig6_3_ns_simulation(benchmark):
    points = benchmark.pedantic(fig6_3_ns_simulation, rounds=1, iterations=1)
    save_series("fig6_3_ns_sim", [
        "rate  detected  latency_rounds  fp_rounds  malicious_drops",
        *(f"{p.drop_rate:.2f}  {p.detected}  {p.detection_latency_rounds}"
          f"  {p.false_positive_rounds}  {p.malicious_drops}"
          for p in points),
    ])
    baseline = next(p for p in points if p.drop_rate == 0.0)
    assert not baseline.detected
    assert baseline.false_positive_rounds == 0
    for p in points:
        if p.drop_rate > 0:
            assert p.detected, f"rate {p.drop_rate} must be detected"
            assert p.false_positive_rounds == 0
