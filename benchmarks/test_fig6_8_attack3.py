"""Fig 6.8 — droptail attack 3: drop the selected flow at ≥95% queue.

The hardest droptail attack: the adversary leaves only a whisker of
space.  χ still resolves it (via the accumulated combined test), with
zero false positives.
"""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_8_attack3


def test_fig6_8_attack3(benchmark):
    result = benchmark.pedantic(fig6_8_attack3, rounds=1, iterations=1)
    save_series("fig6_8_attack3", scenario_lines(result))
    assert result.detected
    assert result.false_positives == 0
    assert result.malicious_drops_truth > 0
