"""Fig 3.8 — PERLMANd colluding routers frame a correct link; plus the
SecTrace framing (Fig 3.7) and AWERBUCH log-round localization."""

from conftest import save_series

from repro.eval.experiments import (
    awerbuch_localization_demo,
    perlman_collusion_demo,
    sectrace_framing_demo,
)


def test_perlman_collusion(benchmark):
    perlman, sectrace, awerbuch = benchmark.pedantic(
        lambda: (perlman_collusion_demo(), sectrace_framing_demo(),
                 awerbuch_localization_demo()),
        rounds=1, iterations=1,
    )
    save_series("baseline_flaws", [
        f"perlman: {perlman.values}",
        f"sectrace: {sectrace.values}",
        f"awerbuch: {awerbuch.values}",
    ])
    # Fig 3.8: correct link (c, d) framed by colluding b and e.
    assert perlman.values["perlmand_suspected"] == ("c", "d")
    assert perlman.values["perlmand_framed_correct_link"]
    # Fig 3.7: SecTrace framed by a late-activating attacker.
    assert sectrace.values["framed_correct_link"]
    # §3.5: binary search stays within its log bound and is accurate.
    assert awerbuch.values["contains_attacker"]
    assert awerbuch.values["rounds"] <= awerbuch.values["log2_bound"] + 1
