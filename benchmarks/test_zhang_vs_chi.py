"""§3.12 vs Chapter 6 — ZHANG's Poisson model against Protocol χ.

Same trace, same monitored queue: an attacker sized *under* ZHANG's
model headroom (the threshold slack its M/M/1/K prediction leaves under
bursty TCP) goes unseen by ZHANG but is caught by χ's queue replay.
"""

from conftest import save_series

from repro.baselines.zhang import ZhangDetector
from repro.eval import build_scenario, droptail_spec
from repro.net import MBPS, QueueConditionalDropAttack


def run_face_off():
    scenario = build_scenario(droptail_spec(tau=2.0))
    net, chi = scenario.network, scenario.chi
    tap = chi.taps[scenario.target]
    net.run(20.0)
    chi.calibrate(scenario.target)
    chi.schedule_rounds(10, 44)
    net.run(50.0)
    attack = QueueConditionalDropAttack(["tcp1"], fill_threshold=0.90,
                                        seed=1)
    net.routers["r"].compromise = attack
    net.run(110.0)

    zhang = ZhangDetector(bandwidth=1 * MBPS, queue_limit=60_000, tau=2.0)
    zhang_alarms_benign = 0
    zhang_alarms_attack = 0
    for k in range(10, 45):
        lo, hi = k * 2.0, (k + 1) * 2.0
        ins = [r for r in tap.records_in if lo <= r.time < hi]
        outs = [r for r in tap.records_out if lo <= r.time < hi]
        verdict = zhang.observe_round(k, ins, outs)
        if verdict.alarmed:
            if k < 25:
                zhang_alarms_benign += 1
            else:
                zhang_alarms_attack += 1

    chi_benign = [f for f in chi.findings if f.round_index < 25]
    chi_attack = [f for f in chi.findings if f.round_index >= 25]
    return {
        "malicious_drops": len(attack.dropped),
        "zhang_fp": zhang_alarms_benign,
        "zhang_detected": zhang_alarms_attack > 0,
        "chi_fp": sum(f.alarmed for f in chi_benign),
        "chi_detected": any(f.alarmed for f in chi_attack),
    }


def test_zhang_vs_chi(benchmark):
    result = benchmark.pedantic(run_face_off, rounds=1, iterations=1)
    save_series("zhang_vs_chi", [f"{k}: {v}" for k, v in result.items()])
    # χ: clean and correct.
    assert result["chi_fp"] == 0
    assert result["chi_detected"]
    assert result["malicious_drops"] > 0
    # ZHANG misses the sub-headroom attack (or false-positives — either
    # way it is unsound where χ is not).
    assert (not result["zhang_detected"]) or result["zhang_fp"] > 0
