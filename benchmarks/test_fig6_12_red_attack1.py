"""Fig 6.12 — RED attack 1: drop selected flows above a 45 kB average."""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_12_red_attack1


def test_fig6_12_red_attack1(benchmark):
    result = benchmark.pedantic(fig6_12_red_attack1, rounds=1, iterations=1)
    save_series("fig6_12_red_attack1", scenario_lines(result))
    assert result.detected
    assert result.false_positives == 0
    # Fine-grained: the malicious drops hide among many more RED drops.
    assert result.malicious_drops_truth < result.total_drops / 2
