"""Fig 6.14 — RED attack 3: drop only 10% of selected flows above 45 kB."""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_14_red_attack3


def test_fig6_14_red_attack3(benchmark):
    result = benchmark.pedantic(fig6_14_red_attack3, rounds=1, iterations=1)
    save_series("fig6_14_red_attack3", scenario_lines(result))
    assert result.detected
    assert result.false_positives == 0
