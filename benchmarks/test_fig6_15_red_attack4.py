"""Fig 6.15 — RED attack 4: 5% of selected flows above 45 kB.

The finest-grained RED attack; the cumulative per-flow statistics
accumulate evidence across rounds until the z-score clears 4σ.
"""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_15_red_attack4


def test_fig6_15_red_attack4(benchmark):
    result = benchmark.pedantic(fig6_15_red_attack4, rounds=1, iterations=1)
    save_series("fig6_15_red_attack4", scenario_lines(result))
    assert result.detected
    assert result.false_positives == 0
