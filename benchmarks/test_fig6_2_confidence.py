"""Fig 6.2 — c_single as a function of the predicted queue length.

Paper shape: ~1 while the queue has room, collapsing to ~0 as
q_pred + ps approaches q_limit, with the transition width set by σ.
"""

from conftest import save_series

from repro.eval.experiments import fig6_2_confidence_curve


def test_fig6_2_confidence(benchmark):
    curve = benchmark.pedantic(
        lambda: fig6_2_confidence_curve(q_limit=30_000, packet_size=1_000,
                                        mu=0.0, sigma=1_000.0),
        rounds=1, iterations=1,
    )
    save_series("fig6_2_confidence", [
        "q_pred  confidence",
        *(f"{q:7.0f}  {c:.6f}" for q, c in curve.points),
    ])
    confidences = [c for _, c in curve.points]
    assert confidences[0] > 0.9999
    assert confidences[-1] < 0.2
    assert confidences == sorted(confidences, reverse=True)
    # The transition happens within a few sigma of the limit.
    drop_zone = [q for q, c in curve.points if 0.05 < c < 0.95]
    assert drop_zone
    assert min(drop_zone) > 30_000 - 1_000 - 5 * 1_000
