"""Fig 6.6 — droptail attack 1: drop 20% of the selected flow."""

from conftest import save_series, scenario_lines

from repro.eval.experiments import fig6_6_attack1


def test_fig6_6_attack1(benchmark):
    result = benchmark.pedantic(fig6_6_attack1, rounds=1, iterations=1)
    lines = scenario_lines(result)
    lines.append(f"victim goodput: "
                 f"{result.extra.get('victim_goodput_pps', 0):.1f} pps")
    lines.append(f"bystander goodput: "
                 f"{result.extra.get('bystander_goodput_pps', 0):.1f} pps")
    save_series("fig6_6_attack1", lines)
    assert result.detected
    assert result.metrics.detection_latency_rounds <= 2
    assert result.false_positives == 0
    assert result.malicious_drops_truth > 0
    # The paper's motivation panel: the selected flow visibly suffers.
    victim = result.extra["victim_goodput_pps"]
    bystander = result.extra["bystander_goodput_pps"]
    assert victim < bystander
