"""§7.1/§7.2 — microbenchmarks of the per-packet machinery.

Chapter 7 analyses the protocols' runtime costs: fingerprint computation
per packet, summary state per round, and set-difference computation for
distributed reconciliation.  These benches measure our implementations
directly (true per-op timings, unlike the figure benches).
"""

import pytest

from repro.core.summaries import SummaryBuilder, SummaryPolicy
from repro.crypto.fingerprint import fingerprint
from repro.dist.reconcile import (
    BloomFilter,
    CharacteristicPolynomialSet,
    reconcile,
)
from repro.net.packet import Packet


def test_fingerprint_per_packet(benchmark):
    """§7.1: one keyed fingerprint per forwarded packet."""
    packet = Packet(src="a", dst="b", payload=b"x" * 64)
    result = benchmark(fingerprint, packet, b"key")
    assert 0 <= result < (1 << 64)


def test_summary_observation(benchmark):
    """Per-packet summary update (the in-kernel hot path of Fig 5.5)."""
    builder = SummaryBuilder("r", ("a", "b"), 0, "sent",
                             SummaryPolicy.CONTENT)

    counter = iter(range(10**9))

    def observe():
        builder.observe(next(counter), 1000, 0.0)

    benchmark(observe)
    assert builder.count > 0


def test_polynomial_reconciliation(benchmark):
    """Appendix A: O(d) communication set difference, per round."""
    set_a = set(range(10_000, 11_000))
    set_b = (set_a - {10_001, 10_002}) | {1, 2, 3}

    def round_trip():
        message = CharacteristicPolynomialSet.from_set(set_a, max_diff=8)
        return reconcile(set_b, message, max_diff=8)

    remote_only, local_only = benchmark.pedantic(round_trip, rounds=3,
                                                 iterations=1)
    assert len(remote_only) == 2
    assert local_only == {1, 2, 3}


def test_disabled_recorder_guard(benchmark):
    """repro.obs: the attribute-read + branch every instrumented seam
    pays while tracing is off.  Must stay in the nanoseconds — the
    observability subsystem's contract is that it is free when unused.
    """
    from repro.obs.record import recorder

    rec = recorder()
    assert not rec.active

    def guard():
        return rec.active

    assert benchmark(guard) is False


def test_bloom_filter_difference(benchmark):
    """The cheaper, approximate alternative of §2.4.1."""
    def build_and_estimate():
        from repro.dist.reconcile import bloom_difference_estimate
        a = BloomFilter(bits=16_384, hashes=4)
        b = BloomFilter(bits=16_384, hashes=4)
        for x in range(1000):
            a.add(x)
            b.add(x)
        for x in range(5000, 5050):
            a.add(x)
        return bloom_difference_estimate(a, b)

    estimate = benchmark.pedantic(build_and_estimate, rounds=3, iterations=1)
    assert estimate == pytest.approx(50, rel=0.5)
