"""§5.1.1/§5.2.1 — per-router counter state: WATCHERS vs Πk+2.

Paper numbers (Sprintlink): WATCHERS ≈ 13,605 counters mean / 99,225 max;
Πk+2 needs hundreds — two orders of magnitude less.
"""

import pytest
from conftest import save_series

from repro.eval.experiments import state_overhead


def test_state_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: state_overhead("sprintlink", ks=(2, 7)),
        rounds=1, iterations=1,
    )
    save_series("state_overhead", result.rows())

    # Paper: 7 × 6.17 × 315 ≈ 13,605 mean; 7 × 45 × 315 = 99,225 max.
    assert result.watchers_mean == pytest.approx(13_605, rel=0.02)
    assert result.watchers_max == 99_225
    for k in (2, 7):
        assert result.pik2_counters[k]["mean"] < result.watchers_mean / 10
        assert result.pik2_counters[k]["max"] < result.watchers_max / 10
