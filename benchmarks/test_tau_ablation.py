"""Round-length τ ablation (§5.3.1).

"A longer time interval requires more traffic summary state to be
maintained, while a shorter time interval places more stringent
synchronization requirements" — and detection latency scales with τ.
Sweep τ for the same Πk+2 deployment and attack.
"""

from conftest import save_series

from repro.core.pik2 import PiK2Config, ProtocolPiK2
from repro.core.segments import monitored_segments_pik2
from repro.core.summaries import PathOracle, SegmentMonitor
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.net.adversary import DropFlowAttack
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import chain
from repro.net.traffic import CBRSource


def run_tau(tau: float):
    net = Network(chain(5))
    paths = install_static_routes(net)
    schedule = RoundSchedule(tau=tau)
    monitor = SegmentMonitor(net, PathOracle(paths), schedule)
    net.add_tap(monitor)
    segments = set().union(*monitored_segments_pik2(
        [tuple(p) for p in paths.values()], k=1).values())
    protocol = ProtocolPiK2(net, monitor, segments, KeyInfrastructure(),
                            schedule, config=PiK2Config())
    horizon = 24.0
    protocol.schedule_rounds(0, max(1, int(horizon / tau)) - 1)
    CBRSource(net, "r1", "r5", "f1", rate_bps=600_000, duration=horizon - 4)
    attack_at = 8.0
    net.run(attack_at)
    net.routers["r3"].compromise = DropFlowAttack(["f1"], fraction=0.3,
                                                  seed=1)
    peak_state = 0
    end = attack_at
    while end < horizon:
        end = min(horizon, end + 1.0)
        net.run(end)
        # A deployed router garbage-collects rounds once validated; keep
        # a small pipeline of recent rounds (settle + exchange timeout)
        # so conclusions still find their summaries.  Peak live state is
        # then proportional to tau.
        current_round = schedule.round_of(net.sim.now)
        monitor.drop_rounds_before(current_round - 3)
        peak_state = max(peak_state, monitor.state_units("r1"))
    detection = None
    for state in protocol.states.values():
        for suspicion in state.suspicions:
            if "r3" in suspicion.segment:
                lo, hi = suspicion.interval
                when = hi  # earliest possible announcement is round end
                detection = when if detection is None else min(detection, when)
    latency = None if detection is None else max(0.0, detection - attack_at)
    return latency, peak_state


def test_tau_ablation(benchmark):
    taus = (0.5, 1.0, 2.0, 4.0)
    results = benchmark.pedantic(
        lambda: {tau: run_tau(tau) for tau in taus},
        rounds=1, iterations=1,
    )
    lines = ["tau   detection_latency_bound  peak_state_units(r1)"]
    for tau, (latency, state) in results.items():
        lines.append(f"{tau:4.1f}  {latency!s:>22}  {state}")
    save_series("tau_ablation", lines)

    # Detected at every tau.
    assert all(latency is not None for latency, _ in results.values())
    # Latency bound grows with tau; per-round state grows with tau.
    latencies = [results[tau][0] for tau in taus]
    assert latencies[0] <= latencies[-1]
    states = [results[tau][1] for tau in taus]
    assert states[0] < states[-1]
