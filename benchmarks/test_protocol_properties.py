"""Appendix B — accuracy/completeness of Π2 and Πk+2 under an adversary
sweep: random compromised routers with mixed traffic/protocol faults.

Paper claims (Theorems B.2/B.3): Π2 is 2-accurate and 2-FC-complete;
Πk+2 is (k+2)-accurate and (k+2)-complete; both strong-complete (every
correct router converges on the suspicions).
"""

import random

from conftest import save_series

from repro.core.detector import accuracy_report, completeness_report
from repro.core.pi2 import Pi2Config, ProtocolPi2
from repro.core.pik2 import PiK2Config, ProtocolPiK2
from repro.core.segments import monitored_segments_pi2, monitored_segments_pik2
from repro.core.summaries import PathOracle, SegmentMonitor, SummaryPolicy
from repro.crypto.keys import KeyInfrastructure
from repro.dist.sync import RoundSchedule
from repro.net.adversary import (
    CombinedCompromise,
    ControlSuppressionAttack,
    DropFlowAttack,
    ModifyAttack,
)
from repro.net.router import Network
from repro.net.routing import install_static_routes
from repro.net.topology import MBPS, chain
from repro.net.traffic import CBRSource


def _run_case(protocol_name, bad_router, behavior, seed):
    net = Network(chain(6, bandwidth=10 * MBPS, delay=0.001))
    paths = install_static_routes(net)
    oracle = PathOracle(paths)
    schedule = RoundSchedule(tau=1.0)
    keys = KeyInfrastructure()
    monitor = SegmentMonitor(net, oracle, schedule,
                             policy=SummaryPolicy.CONTENT)
    net.add_tap(monitor)
    segments = set()
    enum = (monitored_segments_pi2 if protocol_name == "pi2"
            else monitored_segments_pik2)
    for segs in enum([tuple(p) for p in paths.values()], k=1).values():
        segments |= segs
    if protocol_name == "pi2":
        protocol = ProtocolPi2(net, monitor, segments, keys, schedule,
                               config=Pi2Config(k=1))
        max_precision = 2
    else:
        protocol = ProtocolPiK2(net, monitor, segments, keys, schedule,
                                config=PiK2Config(k=1))
        max_precision = 3
    protocol.schedule_rounds(0, 3)

    if behavior == "drop":
        attack = DropFlowAttack(["f1", "f2"], fraction=0.5, seed=seed)
    elif behavior == "modify":
        attack = ModifyAttack(fraction=0.5, seed=seed)
    else:
        attack = CombinedCompromise(
            DropFlowAttack(["f1"], fraction=0.5, seed=seed),
            ControlSuppressionAttack(),
        )
    net.routers[bad_router].compromise = attack

    CBRSource(net, "r1", "r6", "f1", rate_bps=600_000, duration=4.0)
    CBRSource(net, "r6", "r1", "f2", rate_bps=600_000, duration=4.0)
    net.run(7.0)

    acc = accuracy_report(protocol.states, {bad_router},
                          max_precision=max_precision)
    comp = completeness_report(protocol.states, {bad_router}, mode="FI")
    return acc, comp


def test_protocol_properties(benchmark):
    cases = [(proto, bad, behavior)
             for proto in ("pi2", "pik2")
             for bad in ("r2", "r3", "r4")
             for behavior in ("drop", "modify", "combined")]

    def sweep():
        results = []
        for i, (proto, bad, behavior) in enumerate(cases):
            acc, comp = _run_case(proto, bad, behavior, seed=i)
            results.append((proto, bad, behavior, acc, comp))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["protocol  router  behavior  suspicions  accurate  complete"]
    for proto, bad, behavior, acc, comp in results:
        lines.append(f"{proto:8s}  {bad:6s}  {behavior:8s}  "
                     f"{acc.total_suspicions:10d}  {acc.accurate!s:8s}  "
                     f"{comp.complete}")
    save_series("protocol_properties", lines)

    for proto, bad, behavior, acc, comp in results:
        assert acc.total_suspicions > 0, (proto, bad, behavior)
        assert acc.accurate, (proto, bad, behavior)
        assert comp.complete, (proto, bad, behavior)
