"""Multi-seed sweep over Fig 6.6: detection robust across Monte-Carlo seeds.

The per-figure benches regenerate each result at one seed; this bench
uses the sweep engine to replicate Fig 6.6's attack across derived seeds
and asserts the paper's qualitative claims hold in distribution —
detected at every seed, zero false positives at every seed — writing
mean/median/CI aggregates alongside the single-seed series.
"""

from conftest import save_series

from repro.sweep import SweepConfig, run_sweep

FIELDS = (
    "detected",
    "metrics.detection_latency_rounds",
    "metrics.false_positive_rounds",
    "malicious_drops_truth",
    "total_drops",
    "extra.victim_goodput_pps",
    "extra.bystander_goodput_pps",
)


def test_fig6_6_multiseed_sweep(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_sweep("fig6_6", SweepConfig(seeds=3, jobs=2,
                                                root_seed=0)),
        rounds=1, iterations=1)
    aggregate = sweep.aggregate
    lines = [
        f"sweep: fig6_6 seeds={sweep.seeds} jobs={sweep.jobs} "
        f"root_seed={sweep.root_seed}",
        f"cache: {sweep.cache_hits} hits {sweep.cache_misses} misses",
        f"per-run seeds: {[r['seed'] for r in sweep.records]}",
    ]
    for field in FIELDS:
        stats = aggregate[field]
        lines.append(
            f"{field}: n={stats['n']} mean={stats['mean']:.3f} "
            f"median={stats['median']:.3f} std={stats['std']:.3f} "
            f"ci95={stats['ci95']:.3f}")
    save_series("fig6_6_multiseed_sweep", lines)

    assert aggregate["detected"]["mean"] == 1.0  # every seed detects
    assert aggregate["metrics.false_positive_rounds"]["max"] == 0.0
    assert aggregate["malicious_drops_truth"]["min"] > 0
    assert aggregate["detected"]["n"] == 3
