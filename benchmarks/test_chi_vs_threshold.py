"""§6.4.3 — Protocol χ vs static thresholds.

Paper claim: no static threshold is sound — low thresholds false-positive
on benign congestion, high ones grant the attacker free drops (and miss
subtle attacks entirely); χ has zero false positives and detects.
"""

from conftest import save_series

from repro.eval.experiments import chi_vs_static_threshold


def test_chi_vs_static_threshold(benchmark):
    result = benchmark.pedantic(chi_vs_static_threshold, rounds=1,
                                iterations=1)
    lines = [
        f"benign max losses/round: {result.benign_max_losses}",
        f"attack mean losses/round: {result.attack_mean_losses:.1f} "
        f"(total malicious: {result.total_malicious_drops})",
        "threshold  fp_rounds  detected  free_malicious_drops",
    ]
    for t in result.thresholds:
        lines.append(f"{t:9d}  {result.static_fp_rounds[t]:9d}  "
                     f"{str(result.static_detected[t]):8s}  "
                     f"{result.static_free_drops[t]}")
    lines.append(f"chi: fp={result.chi_fp_rounds} "
                 f"detected={result.chi_detected} free_drops=0")
    save_series("chi_vs_threshold", lines)

    # Every threshold is unsound in at least one way...
    assert set(result.unsound_thresholds()) == set(result.thresholds)
    # ...while χ is clean on both traces.
    assert result.chi_detected
    assert result.chi_fp_rounds == 0
